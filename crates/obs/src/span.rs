//! Hierarchical spans and typed work counters.
//!
//! The capture model mirrors the workspace's sharded-arena execution
//! model (PR 1): every thread keeps a *private* span stack and root
//! buffer in thread-local storage, so probes never contend on a lock.
//! Coordinating threads collect worker-side measurements either by
//! [`Span::finish`]-ing a span into a detached [`SpanRecord`] and handing
//! it across (records are plain `Send` data), or by folding per-block
//! spans into a [`LocalStats`] accumulator carried in the worker's sweep
//! state and [`adopt`]-ing the merged record afterwards.
//!
//! Capture is off by default: [`span`] checks one relaxed atomic and
//! returns an inert guard, [`count`] is a load-and-branch. Enable it with
//! [`set_enabled`], drain finished top-level spans with
//! [`take_thread_roots`] *on the thread that produced them*. Compiling
//! the crate without the `capture` feature turns every probe into a
//! literal no-op, which is the "compiled out" point of the E18 overhead
//! experiment.

use crate::json::Json;

/// The typed work counters the workspace accounts for. One fixed slot
/// per counter keeps [`CounterSet`] a flat array — adding a counter is a
/// one-line change here plus its `name`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// ERM-oracle invocations (Lemma 7 reduction).
    OracleCalls,
    /// Oracle invocations that found a 0-error hypothesis.
    RealizableCalls,
    /// Parameter tuples tallied to completion (Proposition 11 sweep).
    EvaluatedParams,
    /// Parameter tuples abandoned mid-tally by the shared bound.
    PrunedParams,
    /// Bounded-BFS runs.
    BfsRuns,
    /// Vertices enqueued across bounded-BFS runs (ball sizes).
    BfsVertices,
    /// Splitter-game rounds played (Fact 4).
    GameRounds,
    /// Result-cache hits.
    CacheHits,
    /// Result-cache misses.
    CacheMisses,
    /// Critical tuples found by the ND learner (Theorem 13).
    CriticalTuples,
    /// Ball centres selected by the ND learner's Vitali cover.
    Centers,
    /// Search branches explored by the ND learner.
    Branches,
    /// Client calls re-sent after a transport-level failure.
    Retries,
    /// Client connections re-established after a failure.
    Reconnects,
    /// Frames dropped/delayed/truncated/garbled by the chaos proxy.
    FaultsInjected,
    /// Worker-pool jobs that panicked (isolated; the worker survives).
    WorkerPanics,
    /// Bytecode-VM instructions dispatched (each batched over many lanes).
    VmInstructions,
    /// Lanes covered across VM instruction dispatches (batch widths).
    VmBatchLanes,
    /// `u64` bitset words read or written by VM instruction dispatches.
    VmWordsScanned,
    /// Hedge requests launched by the cluster router (primary was slow).
    HedgesFired,
    /// Hedge requests whose reply arrived before the primary's.
    HedgesWon,
    /// Read requests re-sent to the next replica after a failure.
    ReplicaRetries,
    /// Backends ejected from rotation by the router's health tracker.
    Failovers,
}

/// Number of counter slots.
pub const COUNTERS: usize = 23;

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; COUNTERS] = [
        Counter::OracleCalls,
        Counter::RealizableCalls,
        Counter::EvaluatedParams,
        Counter::PrunedParams,
        Counter::BfsRuns,
        Counter::BfsVertices,
        Counter::GameRounds,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CriticalTuples,
        Counter::Centers,
        Counter::Branches,
        Counter::Retries,
        Counter::Reconnects,
        Counter::FaultsInjected,
        Counter::WorkerPanics,
        Counter::VmInstructions,
        Counter::VmBatchLanes,
        Counter::VmWordsScanned,
        Counter::HedgesFired,
        Counter::HedgesWon,
        Counter::ReplicaRetries,
        Counter::Failovers,
    ];

    /// The stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OracleCalls => "oracle_calls",
            Counter::RealizableCalls => "realizable_calls",
            Counter::EvaluatedParams => "evaluated_params",
            Counter::PrunedParams => "pruned_params",
            Counter::BfsRuns => "bfs_runs",
            Counter::BfsVertices => "bfs_vertices",
            Counter::GameRounds => "game_rounds",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
            Counter::CriticalTuples => "critical_tuples",
            Counter::Centers => "centers",
            Counter::Branches => "branches",
            Counter::Retries => "retries",
            Counter::Reconnects => "reconnects",
            Counter::FaultsInjected => "faults_injected",
            Counter::WorkerPanics => "worker_panics",
            Counter::VmInstructions => "vm_instructions",
            Counter::VmBatchLanes => "vm_batch_lanes",
            Counter::VmWordsScanned => "vm_words_scanned",
            Counter::HedgesFired => "hedges_fired",
            Counter::HedgesWon => "hedges_won",
            Counter::ReplicaRetries => "replica_retries",
            Counter::Failovers => "failovers",
        }
    }

    /// Inverse of [`Counter::name`].
    pub fn from_name(name: &str) -> Option<Counter> {
        Counter::ALL.into_iter().find(|c| c.name() == name)
    }

    fn slot(self) -> usize {
        Counter::ALL
            .iter()
            .position(|c| *c == self)
            .expect("every counter is listed in ALL")
    }
}

/// A fixed-size bag of counter values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CounterSet {
    vals: [u64; COUNTERS],
}

impl CounterSet {
    /// All-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `c`.
    pub fn add(&mut self, c: Counter, n: u64) {
        self.vals[c.slot()] += n;
    }

    /// Read counter `c`.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c.slot()]
    }

    /// Fold another set into this one.
    pub fn merge(&mut self, other: &CounterSet) {
        for (a, b) in self.vals.iter_mut().zip(&other.vals) {
            *a += b;
        }
    }

    /// Whether every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }

    /// The non-zero counters, in slot order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL
            .into_iter()
            .zip(self.vals)
            .filter(|&(_, v)| v != 0)
    }
}

/// One finished span: a named, timed tree node with counters and
/// free-form metadata. Plain `Send + Sync` data — this is what crosses
/// threads, goes over the wire, and lands in JSONL files.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRecord {
    /// Span name (stable identifier, e.g. `erm.sweep`).
    pub name: String,
    /// Wall time between open and close, monotonic clock.
    pub elapsed_ns: u64,
    /// Counters incremented while this span was innermost.
    pub counters: CounterSet,
    /// Free-form metadata (`meta` calls), insertion-ordered.
    pub meta: Vec<(String, Json)>,
    /// Child spans, in completion order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// A fresh zero-duration record (used by the capture machinery and
    /// by code synthesising worker-side records).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            elapsed_ns: 0,
            counters: CounterSet::new(),
            meta: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Counter `c` summed over this span and all descendants.
    pub fn total(&self, c: Counter) -> u64 {
        self.counters.get(c) + self.children.iter().map(|ch| ch.total(c)).sum::<u64>()
    }

    /// All counters summed over this span and all descendants.
    pub fn counters_total(&self) -> CounterSet {
        let mut out = self.counters.clone();
        for ch in &self.children {
            out.merge(&ch.counters_total());
        }
        out
    }

    /// Number of spans in the tree (including this one).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::span_count).sum::<usize>()
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|ch| ch.find(name))
    }
}

/// A `Send` accumulator for worker-side capture inside sweeps: workers
/// open a [`span`] per block, [`Span::finish`] it, and [`LocalStats::absorb`]
/// the record; the coordinating thread turns the merged stats into one
/// `<name>` child record per worker via [`LocalStats::into_record`].
#[derive(Clone, Debug, Default)]
pub struct LocalStats {
    /// Total busy time across absorbed block spans.
    pub busy_ns: u64,
    /// Number of absorbed block spans.
    pub blocks: u64,
    /// Counters folded from absorbed spans (descendants included).
    pub counters: CounterSet,
}

impl LocalStats {
    /// Empty stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one finished block span (if capture was live) into the stats.
    pub fn absorb(&mut self, rec: Option<SpanRecord>) {
        if let Some(r) = rec {
            self.busy_ns += r.elapsed_ns;
            self.blocks += 1;
            self.counters.merge(&r.counters_total());
        }
    }

    /// The merged record, or `None` if nothing was captured.
    pub fn into_record(self, name: &'static str) -> Option<SpanRecord> {
        (self.blocks > 0).then(|| SpanRecord {
            name: name.to_string(),
            elapsed_ns: self.busy_ns,
            counters: self.counters,
            meta: Vec::new(),
            children: Vec::new(),
        })
    }
}

// ---------------------------------------------------------------------------
// Capture machinery (feature = "capture")
// ---------------------------------------------------------------------------

#[cfg(feature = "capture")]
mod capture {
    use super::*;
    use std::cell::RefCell;
    use std::marker::PhantomData;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);

    struct Frame {
        rec: SpanRecord,
        start: Instant,
    }

    thread_local! {
        static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
        static ROOTS: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
    }

    /// Turn capture on or off process-wide. Spans already open keep
    /// their frame and still close correctly.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Whether capture is currently on (one relaxed load).
    #[inline]
    pub fn enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// RAII guard for an open span. Dropping it closes the span and
    /// attaches the record to the enclosing span (or the thread's root
    /// buffer). Not `Send`: a span must close on the thread that opened
    /// it — hand [`SpanRecord`]s across threads instead.
    #[must_use]
    pub struct Span {
        live: bool,
        _not_send: PhantomData<*const ()>,
    }

    /// Open a span. When capture is disabled this is one atomic load and
    /// returns an inert guard.
    #[inline]
    pub fn span(name: &'static str) -> Span {
        if !enabled() {
            return Span {
                live: false,
                _not_send: PhantomData,
            };
        }
        STACK.with(|s| {
            s.borrow_mut().push(Frame {
                rec: SpanRecord::new(name),
                start: Instant::now(),
            })
        });
        Span {
            live: true,
            _not_send: PhantomData,
        }
    }

    impl Span {
        /// Close the span and return its record *instead of* attaching
        /// it — the detached form worker threads use to hand
        /// measurements to a coordinator (which [`adopt`]s them).
        /// `None` when capture was off at open time.
        pub fn finish(mut self) -> Option<SpanRecord> {
            if !self.live {
                return None;
            }
            self.live = false;
            Some(pop_frame())
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if self.live {
                let rec = pop_frame();
                attach(rec);
            }
        }
    }

    fn pop_frame() -> SpanRecord {
        STACK.with(|s| {
            let f = s
                .borrow_mut()
                .pop()
                .expect("span guards close in LIFO order on their own thread");
            let mut rec = f.rec;
            rec.elapsed_ns = f.start.elapsed().as_nanos() as u64;
            rec
        })
    }

    fn attach(rec: SpanRecord) {
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            match s.last_mut() {
                Some(parent) => parent.rec.children.push(rec),
                None => ROOTS.with(|r| r.borrow_mut().push(rec)),
            }
        })
    }

    /// Attach a detached record (from [`Span::finish`] on another
    /// thread, or synthesised via [`LocalStats`]) as a child of the
    /// current thread's innermost open span.
    pub fn adopt(rec: SpanRecord) {
        attach(rec);
    }

    /// Add `n` to counter `c` on the innermost open span of this thread.
    /// Disabled or outside any span: a load-and-branch, then dropped.
    #[inline]
    pub fn count(c: Counter, n: u64) {
        if !enabled() {
            return;
        }
        STACK.with(|s| {
            if let Some(f) = s.borrow_mut().last_mut() {
                f.rec.counters.add(c, n);
            }
        })
    }

    /// Attach metadata to the innermost open span of this thread.
    pub fn meta(key: &'static str, v: Json) {
        if !enabled() {
            return;
        }
        STACK.with(|s| {
            if let Some(f) = s.borrow_mut().last_mut() {
                f.rec.meta.push((key.to_string(), v));
            }
        })
    }

    /// Drain the finished top-level spans of *this thread*, in
    /// completion order.
    pub fn take_thread_roots() -> Vec<SpanRecord> {
        ROOTS.with(|r| std::mem::take(&mut *r.borrow_mut()))
    }
}

#[cfg(feature = "capture")]
pub use capture::{adopt, count, enabled, meta, set_enabled, span, take_thread_roots, Span};

// ---------------------------------------------------------------------------
// No-op surface (capture compiled out)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "capture"))]
mod noop {
    use super::*;

    /// Capture is compiled out: requests to enable are ignored.
    pub fn set_enabled(_on: bool) {}

    /// Always `false` without the `capture` feature.
    #[inline]
    pub fn enabled() -> bool {
        false
    }

    /// Inert span guard (capture compiled out).
    #[must_use]
    pub struct Span(());

    /// No-op: returns an inert guard.
    #[inline]
    pub fn span(_name: &'static str) -> Span {
        Span(())
    }

    impl Span {
        /// Always `None` without the `capture` feature.
        pub fn finish(self) -> Option<SpanRecord> {
            None
        }
    }

    /// No-op.
    pub fn adopt(_rec: SpanRecord) {}

    /// No-op.
    #[inline]
    pub fn count(_c: Counter, _n: u64) {}

    /// No-op.
    pub fn meta(_key: &'static str, _v: Json) {}

    /// Always empty without the `capture` feature.
    pub fn take_thread_roots() -> Vec<SpanRecord> {
        Vec::new()
    }
}

#[cfg(not(feature = "capture"))]
pub use noop::{adopt, count, enabled, meta, set_enabled, span, take_thread_roots, Span};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "capture")]
    #[test]
    fn spans_nest_and_counters_attach_to_innermost() {
        set_enabled(true);
        take_thread_roots();
        {
            let _outer = span("outer");
            count(Counter::OracleCalls, 2);
            {
                let _inner = span("inner");
                count(Counter::OracleCalls, 5);
                meta("r", Json::int(3));
            }
            count(Counter::GameRounds, 1);
        }
        let roots = take_thread_roots();
        assert_eq!(roots.len(), 1);
        let outer = &roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.counters.get(Counter::OracleCalls), 2);
        assert_eq!(outer.counters.get(Counter::GameRounds), 1);
        assert_eq!(outer.children.len(), 1);
        let inner = &outer.children[0];
        assert_eq!(inner.counters.get(Counter::OracleCalls), 5);
        assert_eq!(inner.meta, vec![("r".to_string(), Json::int(3))]);
        assert_eq!(outer.total(Counter::OracleCalls), 7);
        assert_eq!(outer.span_count(), 2);
        assert!(outer.find("inner").is_some());
    }

    #[cfg(feature = "capture")]
    #[test]
    fn detached_spans_cross_threads_via_adopt() {
        set_enabled(true);
        take_thread_roots();
        let _parent = span("parent");
        let rec = std::thread::spawn(|| {
            let sp = span("worker");
            count(Counter::EvaluatedParams, 42);
            sp.finish().expect("capture is on")
        })
        .join()
        .unwrap();
        adopt(rec);
        drop(_parent);
        let roots = take_thread_roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].total(Counter::EvaluatedParams), 42);
        assert_eq!(roots[0].children[0].name, "worker");
    }

    #[cfg(feature = "capture")]
    #[test]
    fn local_stats_fold_block_spans() {
        set_enabled(true);
        let mut stats = LocalStats::new();
        for _ in 0..3 {
            let sp = span("block");
            count(Counter::BfsRuns, 2);
            stats.absorb(sp.finish());
        }
        assert_eq!(stats.blocks, 3);
        assert_eq!(stats.counters.get(Counter::BfsRuns), 6);
        let rec = stats.into_record("worker").unwrap();
        assert_eq!(rec.counters.get(Counter::BfsRuns), 6);
        assert!(LocalStats::new().into_record("worker").is_none());
    }

    #[cfg(not(feature = "capture"))]
    #[test]
    fn compiled_out_probes_are_inert() {
        set_enabled(true);
        assert!(!enabled());
        let sp = span("anything");
        count(Counter::OracleCalls, 1);
        meta("k", Json::Null);
        assert!(sp.finish().is_none());
        let _guard = span("dropped");
        drop(_guard);
        assert!(take_thread_roots().is_empty());
    }

    #[test]
    fn counter_names_round_trip() {
        for c in Counter::ALL {
            assert_eq!(Counter::from_name(c.name()), Some(c));
        }
        assert_eq!(Counter::from_name("nope"), None);
    }

    #[test]
    fn counter_set_merges() {
        let mut a = CounterSet::new();
        a.add(Counter::CacheHits, 3);
        let mut b = CounterSet::new();
        b.add(Counter::CacheHits, 2);
        b.add(Counter::CacheMisses, 1);
        a.merge(&b);
        assert_eq!(a.get(Counter::CacheHits), 5);
        assert_eq!(a.iter_nonzero().count(), 2);
        assert!(!a.is_empty());
        assert!(CounterSet::new().is_empty());
    }
}
