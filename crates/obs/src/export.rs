//! Trace exporters: span ⇄ JSON, JSONL files, and the human-readable
//! tree summary / per-name aggregate the `folearn trace` subcommand
//! prints.
//!
//! JSONL format: one *root* span per line, rendered compactly (the
//! renderer never emits raw newlines, so the framing is exact). Each
//! span object carries `span` (name), `ns` (elapsed, monotonic clock),
//! and — only when non-empty — `counters` (name → value), `meta`
//! (insertion-ordered), and `children` (recursive).

use std::fmt::Write as _;

use crate::json::{Json, JsonError};
use crate::span::{Counter, CounterSet, SpanRecord};

/// Render one span tree as a JSON object.
pub fn span_to_json(rec: &SpanRecord) -> Json {
    let mut pairs = vec![
        ("span".to_string(), Json::str(rec.name.clone())),
        ("ns".to_string(), Json::Num(rec.elapsed_ns as f64)),
    ];
    if !rec.counters.is_empty() {
        pairs.push((
            "counters".to_string(),
            Json::Obj(
                rec.counters
                    .iter_nonzero()
                    .map(|(c, v)| (c.name().to_string(), Json::Num(v as f64)))
                    .collect(),
            ),
        ));
    }
    if !rec.meta.is_empty() {
        pairs.push(("meta".to_string(), Json::Obj(rec.meta.clone())));
    }
    if !rec.children.is_empty() {
        pairs.push((
            "children".to_string(),
            Json::Arr(rec.children.iter().map(span_to_json).collect()),
        ));
    }
    Json::Obj(pairs)
}

/// Reconstruct a span tree from its [`span_to_json`] form.
pub fn span_from_json(v: &Json) -> Result<SpanRecord, JsonError> {
    let name = v
        .get("span")
        .and_then(Json::as_str)
        .ok_or_else(|| JsonError::new("span object needs a \"span\" name"))?
        .to_string();
    let elapsed_ns = v
        .get("ns")
        .and_then(Json::as_num)
        .filter(|n| *n >= 0.0)
        .ok_or_else(|| JsonError::new(format!("span {name:?} needs a numeric \"ns\"")))?
        as u64;
    let mut counters = CounterSet::new();
    if let Some(Json::Obj(pairs)) = v.get("counters") {
        for (k, val) in pairs {
            let c = Counter::from_name(k)
                .ok_or_else(|| JsonError::new(format!("unknown counter {k:?}")))?;
            let n = val
                .as_usize()
                .ok_or_else(|| JsonError::new(format!("counter {k:?} must be a count")))?;
            counters.add(c, n as u64);
        }
    }
    let meta = match v.get("meta") {
        Some(Json::Obj(pairs)) => pairs.clone(),
        _ => Vec::new(),
    };
    let children = match v.get("children") {
        Some(arr) => arr
            .as_arr()
            .ok_or_else(|| JsonError::new("\"children\" must be an array"))?
            .iter()
            .map(span_from_json)
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(SpanRecord {
        name,
        elapsed_ns,
        counters,
        meta,
        children,
    })
}

/// Render root spans as JSONL (one line per root, trailing newline).
pub fn to_jsonl(roots: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in roots {
        out.push_str(&span_to_json(r).render());
        out.push('\n');
    }
    out
}

/// Parse a JSONL trace file (blank lines ignored).
pub fn parse_jsonl(text: &str) -> Result<Vec<SpanRecord>, JsonError> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            span_from_json(&Json::parse(line).map_err(|e| {
                JsonError::new(format!("trace line {}: {e}", i + 1))
            })?)
        })
        .collect()
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

fn summary_line(out: &mut String, rec: &SpanRecord, prefix: &str, last: bool, root: bool) {
    let (branch, cont) = if root {
        ("", "")
    } else if last {
        ("└─ ", "   ")
    } else {
        ("├─ ", "│  ")
    };
    let label = format!("{prefix}{branch}{}", rec.name);
    let _ = write!(out, "{label:<40} {:>12}", fmt_ms(rec.elapsed_ns));
    for (c, v) in rec.counters.iter_nonzero() {
        let _ = write!(out, "  {}={v}", c.name());
    }
    for (k, v) in &rec.meta {
        let _ = write!(out, "  {k}={}", v.render());
    }
    out.push('\n');
    let child_prefix = format!("{prefix}{cont}");
    for (i, ch) in rec.children.iter().enumerate() {
        summary_line(out, ch, &child_prefix, i + 1 == rec.children.len(), false);
    }
}

/// The human-readable tree summary: one line per span with duration,
/// non-zero counters, and metadata, indented with box-drawing guides.
pub fn tree_summary(roots: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in roots {
        summary_line(&mut out, r, "", true, true);
    }
    out
}

/// Per-name aggregate over span trees: `(name, spans, total_ns,
/// counters)` in first-appearance order — the rollup `folearn trace`
/// prints and the server's span metrics mirror.
pub fn aggregate(roots: &[SpanRecord]) -> Vec<(String, u64, u64, CounterSet)> {
    let mut out: Vec<(String, u64, u64, CounterSet)> = Vec::new();
    fn visit(rec: &SpanRecord, out: &mut Vec<(String, u64, u64, CounterSet)>) {
        match out.iter_mut().find(|(n, ..)| *n == rec.name) {
            Some((_, spans, ns, counters)) => {
                *spans += 1;
                *ns += rec.elapsed_ns;
                counters.merge(&rec.counters);
            }
            None => out.push((rec.name.clone(), 1, rec.elapsed_ns, rec.counters.clone())),
        }
        for ch in &rec.children {
            visit(ch, out);
        }
    }
    for r in roots {
        visit(r, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SpanRecord {
        let mut leaf = SpanRecord::new("erm.worker");
        leaf.elapsed_ns = 1_500_000;
        leaf.counters.add(Counter::EvaluatedParams, 100);
        leaf.counters.add(Counter::PrunedParams, 20);
        let mut sweep = SpanRecord::new("erm.sweep");
        sweep.elapsed_ns = 2_000_000;
        sweep.children.push(leaf.clone());
        sweep.children.push({
            let mut l2 = leaf;
            l2.counters.add(Counter::EvaluatedParams, 1);
            l2
        });
        let mut root = SpanRecord::new("solve");
        root.elapsed_ns = 2_100_000;
        root.meta.push(("ell".to_string(), Json::int(2)));
        root.children.push(sweep);
        root
    }

    #[test]
    fn span_json_round_trips() {
        let rec = sample();
        let back = span_from_json(&span_to_json(&rec)).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn jsonl_round_trips_multiple_roots() {
        let roots = vec![sample(), SpanRecord::new("empty")];
        let text = to_jsonl(&roots);
        assert_eq!(text.lines().count(), 2);
        assert_eq!(parse_jsonl(&text).unwrap(), roots);
        assert_eq!(parse_jsonl("\n\n").unwrap(), Vec::new());
        assert!(parse_jsonl("{\"ns\": 1}").is_err());
        assert!(parse_jsonl("{\"span\": \"x\", \"ns\": 1, \"counters\": {\"bogus\": 1}}").is_err());
    }

    #[test]
    fn tree_summary_shows_every_span() {
        let text = tree_summary(&[sample()]);
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("solve"), "{text}");
        assert!(text.contains("├─ erm.worker"), "{text}");
        assert!(text.contains("└─ erm.worker"), "{text}");
        assert!(text.contains("evaluated_params=100"), "{text}");
        assert!(text.contains("ell=2"), "{text}");
    }

    #[test]
    fn aggregate_merges_by_name() {
        let agg = aggregate(&[sample()]);
        assert_eq!(agg.len(), 3);
        let worker = agg.iter().find(|(n, ..)| n == "erm.worker").unwrap();
        assert_eq!(worker.1, 2);
        assert_eq!(worker.2, 3_000_000);
        assert_eq!(worker.3.get(Counter::EvaluatedParams), 201);
    }
}
