//! Windowed time-series — the data behind `folearn top`.
//!
//! A fixed ring of one-second buckets (default window: 60 s). Each
//! bucket accumulates the request/error counts, a latency
//! [`PowHistogram`], cache hit/miss counts, and hedge counters for its
//! second; a slot is lazily re-tagged (and reset) when the ring wraps
//! onto it, so recording is O(1) and the series never allocates after
//! construction. The server's and router's metrics each embed one
//! behind their existing mutex and expose it through `stats` as a
//! `series` object, which `folearn top` turns into rates.
//!
//! Every mutating method has an `_at(sec, …)` variant taking an
//! explicit second tag so tests are deterministic; the untagged
//! wrappers stamp `now_s()` from the series' own monotonic start.

use std::time::Instant;

use crate::hist::PowHistogram;
use crate::json::Json;

/// Ring width: how many one-second buckets the series retains.
pub const WINDOW_S: u64 = 60;

/// Empty-slot sentinel (a live tag is seconds-since-start, far below).
const EMPTY: u64 = u64::MAX;

#[derive(Clone, Debug, Default)]
struct Bucket {
    requests: u64,
    errors: u64,
    latency: PowHistogram,
    cache_hits: u64,
    cache_misses: u64,
    hedges_fired: u64,
    hedges_won: u64,
}

impl Bucket {
    fn to_json(&self, sec: u64) -> Json {
        Json::obj([
            ("t", Json::Num(sec as f64)),
            ("requests", Json::Num(self.requests as f64)),
            ("errors", Json::Num(self.errors as f64)),
            ("p50_us", Json::Num(self.latency.quantile(0.50) as f64)),
            ("p99_us", Json::Num(self.latency.quantile(0.99) as f64)),
            ("cache_hits", Json::Num(self.cache_hits as f64)),
            ("cache_misses", Json::Num(self.cache_misses as f64)),
            ("hedges_fired", Json::Num(self.hedges_fired as f64)),
            ("hedges_won", Json::Num(self.hedges_won as f64)),
        ])
    }
}

/// A ring of per-second buckets covering the last [`WINDOW_S`] seconds.
pub struct TimeSeries {
    slots: Vec<(u64, Bucket)>,
    start: Instant,
}

impl Default for TimeSeries {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeSeries {
    /// An empty series whose clock starts now.
    pub fn new() -> Self {
        Self {
            slots: vec![(EMPTY, Bucket::default()); WINDOW_S as usize],
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since construction — the tag the untagged
    /// recording wrappers stamp.
    pub fn now_s(&self) -> u64 {
        self.start.elapsed().as_secs()
    }

    fn slot_mut(&mut self, sec: u64) -> &mut Bucket {
        let idx = (sec % WINDOW_S) as usize;
        let slot = &mut self.slots[idx];
        if slot.0 != sec {
            // The ring wrapped onto a stale second: reset in place.
            slot.0 = sec;
            slot.1 = Bucket::default();
        }
        &mut slot.1
    }

    /// Record a finished request (latency in µs) into second `sec`.
    pub fn record_request_at(&mut self, sec: u64, latency_us: u64, ok: bool) {
        let b = self.slot_mut(sec);
        b.requests += 1;
        if !ok {
            b.errors += 1;
        }
        b.latency.record(latency_us);
    }

    /// Record a finished request into the current second.
    pub fn record_request(&mut self, latency_us: u64, ok: bool) {
        self.record_request_at(self.now_s(), latency_us, ok);
    }

    /// Record a solve-cache lookup into second `sec`.
    pub fn record_cache_at(&mut self, sec: u64, hit: bool) {
        let b = self.slot_mut(sec);
        if hit {
            b.cache_hits += 1;
        } else {
            b.cache_misses += 1;
        }
    }

    /// Record a solve-cache lookup into the current second.
    pub fn record_cache(&mut self, hit: bool) {
        self.record_cache_at(self.now_s(), hit);
    }

    /// Record a fired hedge (and whether it won) into second `sec`.
    pub fn record_hedge_at(&mut self, sec: u64, won: bool) {
        let b = self.slot_mut(sec);
        b.hedges_fired += 1;
        if won {
            b.hedges_won += 1;
        }
    }

    /// Record a fired hedge into the current second.
    pub fn record_hedge(&mut self, won: bool) {
        self.record_hedge_at(self.now_s(), won);
    }

    /// Mark an already-recorded hedge as won, in second `sec` (the win
    /// lands after the fire, possibly in a later bucket).
    pub fn record_hedge_won_at(&mut self, sec: u64) {
        self.slot_mut(sec).hedges_won += 1;
    }

    /// Mark an already-recorded hedge as won, in the current second.
    pub fn record_hedge_won(&mut self) {
        self.record_hedge_won_at(self.now_s());
    }

    /// The live window as of second `now`: buckets with tags in
    /// `(now − WINDOW_S, now]`, ascending, each a per-second summary.
    pub fn to_json_at(&self, now: u64) -> Json {
        let floor = now.saturating_sub(WINDOW_S - 1);
        let mut live: Vec<(u64, &Bucket)> = self
            .slots
            .iter()
            .filter(|(sec, _)| *sec != EMPTY && *sec >= floor && *sec <= now)
            .map(|(sec, b)| (*sec, b))
            .collect();
        live.sort_by_key(|(sec, _)| *sec);
        Json::obj([
            ("window_s", Json::Num(WINDOW_S as f64)),
            ("now_s", Json::Num(now as f64)),
            (
                "buckets",
                Json::Arr(live.iter().map(|(sec, b)| b.to_json(*sec)).collect()),
            ),
        ])
    }

    /// The live window as of the current second.
    pub fn to_json(&self) -> Json {
        self.to_json_at(self.now_s())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_renders_an_empty_window() {
        let s = TimeSeries::new();
        let v = s.to_json_at(0);
        assert_eq!(v.get("window_s").and_then(Json::as_usize), Some(60));
        assert_eq!(v.get("buckets").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
    }

    #[test]
    fn buckets_accumulate_and_render_ascending() {
        let mut s = TimeSeries::new();
        s.record_request_at(5, 100, true);
        s.record_request_at(5, 3000, false);
        s.record_cache_at(5, true);
        s.record_cache_at(3, false);
        s.record_hedge_at(5, true);
        let v = s.to_json_at(6);
        let buckets = v.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].get("t").and_then(Json::as_usize), Some(3));
        assert_eq!(buckets[0].get("cache_misses").and_then(Json::as_usize), Some(1));
        let b5 = &buckets[1];
        assert_eq!(b5.get("t").and_then(Json::as_usize), Some(5));
        assert_eq!(b5.get("requests").and_then(Json::as_usize), Some(2));
        assert_eq!(b5.get("errors").and_then(Json::as_usize), Some(1));
        assert_eq!(b5.get("cache_hits").and_then(Json::as_usize), Some(1));
        assert_eq!(b5.get("hedges_fired").and_then(Json::as_usize), Some(1));
        assert_eq!(b5.get("hedges_won").and_then(Json::as_usize), Some(1));
        // p99 covers the 3000 µs sample's power-of-two bucket.
        assert!(b5.get("p99_us").and_then(Json::as_usize).unwrap() >= 3000);
    }

    #[test]
    fn ring_wrap_evicts_stale_seconds() {
        let mut s = TimeSeries::new();
        s.record_request_at(5, 10, true);
        // Second 65 lands on the same slot (65 % 60 == 5) and must reset it.
        s.record_request_at(65, 20, true);
        let v = s.to_json_at(65);
        let buckets = v.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("t").and_then(Json::as_usize), Some(65));
        assert_eq!(buckets[0].get("requests").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn window_excludes_the_distant_past_but_keeps_the_edge() {
        let mut s = TimeSeries::new();
        s.record_request_at(0, 10, true);
        s.record_request_at(30, 10, true);
        // At now = 59 the tag-0 bucket is the oldest still inside the
        // 60 s window; at now = 60 it falls out.
        let at59 = s.to_json_at(59);
        assert_eq!(at59.get("buckets").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        let at60 = s.to_json_at(60);
        let buckets = at60.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("t").and_then(Json::as_usize), Some(30));
    }

    #[test]
    fn wall_clock_wrappers_stamp_the_current_second() {
        let mut s = TimeSeries::new();
        s.record_request(42, true);
        s.record_cache(false);
        s.record_hedge(false);
        let v = s.to_json();
        let buckets = v.get("buckets").and_then(Json::as_arr).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("requests").and_then(Json::as_usize), Some(1));
        assert_eq!(buckets[0].get("hedges_won").and_then(Json::as_usize), Some(0));
    }
}
