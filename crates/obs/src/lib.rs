//! `folearn-obs` — the observability spine of the folearn workspace.
//!
//! Everything the paper claims is a *shape* claim: oracle calls
//! quadratic per level (Lemma 7), splitter-game lengths bounded by `s`
//! (Fact 4), locality-radius recursion in the ND learner (Theorem 13).
//! This crate is the single instrumentation layer that turns those
//! shapes into data every subsystem reports the same way:
//!
//! * [`span`]/[`Counter`] — hierarchical spans with monotonic timings
//!   and typed work counters, captured in per-thread buffers (no lock on
//!   the probe path; workers hand finished [`SpanRecord`]s to their
//!   coordinator, mirroring the sharded-arena merge of the parallel ERM
//!   engine);
//! * [`PowHistogram`] — the power-of-two histogram behind the server's
//!   latency metrics and span-duration aggregation;
//! * [`Json`] — the shared JSON value tree (wire protocol, bench
//!   reports, trace files);
//! * [`export`] — JSONL and tree-summary exporters.
//!
//! Capture is opt-in at runtime ([`set_enabled`]) and can be compiled
//! out entirely by building without the `capture` feature; either way
//! instrumented code paths produce bit-identical results, because probes
//! only ever *record* — they never influence control flow.

pub mod export;
pub mod hist;
pub mod json;
pub mod series;
pub mod span;

pub use hist::{PowHistogram, BUCKETS};
pub use json::{Json, JsonError};
pub use series::{TimeSeries, WINDOW_S};
pub use span::{
    adopt, count, enabled, meta, set_enabled, span, take_thread_roots, Counter, CounterSet,
    LocalStats, Span, SpanRecord, COUNTERS,
};
