//! The shared JSON value tree: a hand-rolled codec used by the wire
//! protocol, the bench report writers, and the trace exporters.
//!
//! The build is offline (no serde), so this module implements the JSON
//! subset the workspace needs from scratch: a [`Json`] value tree with an
//! order-preserving object representation, a recursive-descent parser
//! with full string-escape support (`\n`, `\"`, `\uXXXX` including
//! surrogate pairs), and compact/pretty renderers. The compact renderer
//! never emits a raw newline — control characters inside strings are
//! escaped — so one value always occupies exactly one line and
//! line-oriented framing (wire messages, JSONL trace files) is trivial:
//! write `render() + "\n"`, read with `read_line`.
//!
//! Numbers are `f64`; both renderers print the shortest representation
//! that round-trips (Rust's `Display` for `f64`), so
//! `parse(render(x)) == x` exactly for every finite value. Non-finite
//! values render as `null`. 64-bit identifiers (structure hashes) do not
//! fit `f64` losslessly and therefore travel as fixed-width hex strings
//! (see `folearn_server::proto`).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (the renderers emit
/// keys in the order they were pushed), which keeps wire messages, bench
/// reports, and trace files deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers included).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// An integer value (exact for |n| ≤ 2⁵³).
    pub fn int(n: usize) -> Self {
        Json::Num(n as f64)
    }

    /// An object from key/value pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an f64, if it is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_num()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= 2f64.powi(53)).then_some(n as usize)
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line rendering (no raw newlines anywhere).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, None, 0);
        out
    }

    /// Indented rendering for files meant to be read by humans.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, Some(2), 0);
        out
    }

    fn render_into(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close) = match indent {
            Some(w) => ("\n", " ".repeat(w * (depth + 1)), " ".repeat(w * depth)),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => render_number(out, *n),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    render_string(out, k);
                    out.push_str(": ");
                    v.render_into(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the whole input must be one value).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing garbage after JSON value"));
        }
        Ok(v)
    }
}

fn render_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON error: malformed text, or a document that does not fit the
/// shape a consumer expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(pub String);

impl JsonError {
    /// Build an error from any message.
    pub fn new(msg: impl Into<String>) -> Self {
        JsonError(msg.into())
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError::new(format!("JSON error at byte {}: {msg}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy a maximal escape-free, quote-free run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is valid UTF-8 and we only stopped on ASCII
                // delimiters, so the run is valid UTF-8.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let cp =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(cp)
                                    .ok_or_else(|| self.err("bad surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("bad \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("raw control character in string"))
                }
                Some(_) => unreachable!("fast path consumed non-delimiters"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        let s = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = s
            .parse()
            .map_err(|_| JsonError::new(format!("bad number {s:?}")))?;
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parses_scalars_and_containers() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e1").unwrap(), Json::Num(-25.0));
        assert_eq!(
            Json::parse("[1, 2, []]").unwrap(),
            Json::Arr(vec![Json::Num(1.0), Json::Num(2.0), Json::Arr(vec![])])
        );
        let obj = Json::parse(r#"{"a": 1, "b": {"c": "x"}}"#).unwrap();
        assert_eq!(obj.get("a").unwrap().as_usize(), Some(1));
        assert_eq!(obj.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert!(Json::parse("{broken").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in [
            "plain",
            "with \"quotes\" and \\backslash\\",
            "line\nbreak\r\ttab",
            "control \u{1} \u{1f}",
            "unicode: αβγ 模型 ∀x∃y 🦀",
            "",
        ] {
            let v = Json::Str(s.to_string());
            let compact = v.render();
            assert!(!compact.contains('\n'), "newline leaked: {compact:?}");
            assert_eq!(Json::parse(&compact).unwrap(), v, "compact {s:?}");
            assert_eq!(Json::parse(&v.render_pretty()).unwrap(), v, "pretty {s:?}");
        }
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(
            Json::parse(r#""Aé你""#).unwrap(),
            Json::Str("Aé你".to_string())
        );
        // Surrogate pair for 🦀 (U+1F980).
        assert_eq!(
            Json::parse(r#""🦀""#).unwrap(),
            Json::Str("🦀".to_string())
        );
        assert!(Json::parse(r#""\ud83e""#).is_err());
        assert!(Json::parse(r#""\udd80\ud83e""#).is_err());
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.0, -0.0, 1.0, -17.0, 0.1, 1.0 / 3.0, 1e-12, 9.007199254740992e15] {
            let rendered = Json::Num(n).render();
            let back = Json::parse(&rendered).unwrap().as_num().unwrap();
            assert_eq!(back.to_bits(), {
                // -0.0 renders as "0" (integer path); accept the sign loss.
                if n == 0.0 { 0.0f64.to_bits() } else { n.to_bits() }
            }, "{n} via {rendered}");
        }
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn pretty_rendering_parses_back() {
        let v = Json::obj([
            ("experiment", Json::str("E18")),
            ("runs", Json::Arr(vec![Json::int(1), Json::int(2)])),
            ("nested", Json::obj([("ok", Json::Bool(true))])),
            ("empty", Json::Arr(vec![])),
        ]);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"runs\""), "{pretty}");
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }
}
