//! Power-of-two histograms — the unified latency/size distribution type.
//!
//! Bucket `i` counts samples with `2^{i-1} ≤ v < 2^i` (bucket 0 holds
//! `v = 0`), which reads p50/p95/p99 within a factor of two at any scale
//! with constant memory. This is the histogram the server's metrics were
//! built on; it now lives here so span-duration aggregation and the
//! `stats` endpoint share one implementation.

use crate::json::{Json, JsonError};

/// Number of buckets: covers 1 µs … ~2¹⁹ s when samples are microseconds.
pub const BUCKETS: usize = 40;

/// A merge-able power-of-two histogram with count/total/max accounting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PowHistogram {
    count: u64,
    total: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for PowHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl PowHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: 0,
            total: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.total = self.total.saturating_add(v);
        self.max = self.max.max(v);
        let bucket = (64 - v.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &PowHistogram) {
        self.count += other.count;
        self.total = self.total.saturating_add(other.total);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest sample recorded (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` of the samples;
    /// 0 when the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// `mean_<unit>`/`p50_<unit>`/`p95_<unit>`/`p99_<unit>`/`max_<unit>`
    /// summary pairs — the shape every latency block in the `stats`
    /// payload uses.
    pub fn summary_pairs(&self, unit: &str) -> Vec<(String, Json)> {
        vec![
            (format!("mean_{unit}"), Json::Num(self.mean())),
            (format!("p50_{unit}"), Json::Num(self.quantile(0.50) as f64)),
            (format!("p95_{unit}"), Json::Num(self.quantile(0.95) as f64)),
            (format!("p99_{unit}"), Json::Num(self.quantile(0.99) as f64)),
            (format!("max_{unit}"), Json::Num(self.max as f64)),
        ]
    }

    /// A full summary object: `count` followed by [`Self::summary_pairs`].
    pub fn summary_json(&self, unit: &str) -> Json {
        let mut pairs = vec![("count".to_string(), Json::Num(self.count as f64))];
        pairs.extend(self.summary_pairs(unit));
        Json::Obj(pairs)
    }

    /// Full-fidelity wire form for cluster stats fan-in: `count`,
    /// `total`, and `max` as 16-digit hex strings (exact u64 round-trip
    /// — f64 numbers would round above 2⁵³) and `buckets` as a number
    /// array with trailing zeros trimmed. [`Self::from_wire_json`]
    /// inverts it, so a router can merge backend histograms bucket-wise.
    pub fn to_wire_json(&self) -> Json {
        let trimmed = BUCKETS - self.buckets.iter().rev().take_while(|&&c| c == 0).count();
        Json::obj([
            ("count", Json::str(format!("{:016x}", self.count))),
            ("total", Json::str(format!("{:016x}", self.total))),
            ("max", Json::str(format!("{:016x}", self.max))),
            (
                "buckets",
                Json::Arr(
                    self.buckets[..trimmed]
                        .iter()
                        .map(|&c| Json::Num(c as f64))
                        .collect(),
                ),
            ),
        ])
    }

    /// Reconstruct a histogram from its [`Self::to_wire_json`] form.
    pub fn from_wire_json(v: &Json) -> Result<PowHistogram, JsonError> {
        fn hex_field(v: &Json, key: &str) -> Result<u64, JsonError> {
            let s = v
                .get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| JsonError::new(format!("histogram needs a hex {key:?}")))?;
            u64::from_str_radix(s, 16)
                .map_err(|_| JsonError::new(format!("histogram {key}: bad hex {s:?}")))
        }
        let raw = v
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| JsonError::new("histogram needs a \"buckets\" array"))?;
        if raw.len() > BUCKETS {
            return Err(JsonError::new(format!(
                "histogram has {} buckets, expected at most {BUCKETS}",
                raw.len()
            )));
        }
        let mut buckets = [0u64; BUCKETS];
        for (slot, c) in buckets.iter_mut().zip(raw) {
            *slot = c
                .as_usize()
                .ok_or_else(|| JsonError::new("histogram bucket must be a count"))?
                as u64;
        }
        Ok(PowHistogram {
            count: hex_field(v, "count")?,
            total: hex_field(v, "total")?,
            max: hex_field(v, "max")?,
            buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = PowHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn single_sample_lands_in_its_bucket() {
        let mut h = PowHistogram::new();
        h.record(10);
        // 10 µs sits in bucket 4 (8 ≤ 10 < 16); every quantile reads its
        // upper bound.
        assert_eq!(h.quantile(0.01), 16);
        assert_eq!(h.quantile(0.5), 16);
        assert_eq!(h.quantile(1.0), 16);
        assert_eq!(h.max(), 10);
        assert_eq!(h.total(), 10);
        assert_eq!(h.mean(), 10.0);
    }

    #[test]
    fn top_bucket_saturates() {
        let mut h = PowHistogram::new();
        h.record(u64::MAX);
        // Anything ≥ 2^39 collapses into the last bucket; the quantile
        // reports that bucket's lower-bound power, max stays exact.
        assert_eq!(h.quantile(0.5), 1u64 << (BUCKETS - 1));
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_matches_sequential_recording(){
        let mut a = PowHistogram::new();
        let mut b = PowHistogram::new();
        let mut all = PowHistogram::new();
        for v in [0u64, 1, 2, 3, 100, 5000, 123_456] {
            if v % 2 == 0 { a.record(v) } else { b.record(v) }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn merging_an_empty_histogram_is_the_identity() {
        let mut h = PowHistogram::new();
        for v in [3u64, 77, 4096] {
            h.record(v);
        }
        let before = h.clone();
        h.merge(&PowHistogram::new());
        assert_eq!(h, before, "x ⊕ empty must equal x");
        let mut e = PowHistogram::new();
        e.merge(&before);
        assert_eq!(e, before, "empty ⊕ x must equal x");
    }

    #[test]
    fn self_merge_doubles_every_count() {
        let mut h = PowHistogram::new();
        for v in [0u64, 9, 9, 200, 123_456] {
            h.record(v);
        }
        let copy = h.clone();
        h.merge(&copy);
        assert_eq!(h.count(), 2 * copy.count());
        assert_eq!(h.total(), 2 * copy.total());
        assert_eq!(h.max(), copy.max());
        // Quantiles are invariant under uniform scaling of the counts.
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), copy.quantile(q), "quantile {q} moved");
        }
    }

    #[test]
    fn merged_quantiles_stay_within_bucket_resolution() {
        // Two disjoint halves of a known sample set: after the merge,
        // every quantile must land within a factor of two (= one
        // power-of-two bucket) of the exact order statistic.
        let samples: Vec<u64> = (1..=64u64).map(|i| i * 30).collect();
        let mut a = PowHistogram::new();
        let mut b = PowHistogram::new();
        for (i, &v) in samples.iter().enumerate() {
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
        }
        a.merge(&b);
        assert_eq!(a.count(), samples.len() as u64);
        for q in [0.25, 0.5, 0.9, 0.99] {
            let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            let approx = a.quantile(q);
            assert!(
                approx >= exact && approx < exact * 2,
                "q={q}: bucket bound {approx} not within 2x above exact {exact}"
            );
        }
    }

    #[test]
    fn wire_json_round_trips_exactly() {
        let mut h = PowHistogram::new();
        for v in [0u64, 1, 17, 5000, u64::MAX] {
            h.record(v);
        }
        let back = PowHistogram::from_wire_json(&h.to_wire_json()).unwrap();
        assert_eq!(back, h);
        // total saturated at u64::MAX — the hex form carried it exactly.
        assert_eq!(back.total(), u64::MAX);
        // The empty histogram trims to zero buckets and still round-trips.
        let empty = PowHistogram::new();
        let wire = empty.to_wire_json();
        assert_eq!(wire.get("buckets").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
        assert_eq!(PowHistogram::from_wire_json(&wire).unwrap(), empty);
        // Malformed payloads error instead of panicking.
        assert!(PowHistogram::from_wire_json(&Json::obj([("count", Json::int(1))])).is_err());
        assert!(PowHistogram::from_wire_json(&Json::obj([
            ("count", Json::str("zz")),
            ("total", Json::str("0")),
            ("max", Json::str("0")),
            ("buckets", Json::Arr(Vec::new())),
        ]))
        .is_err());
        let too_many = Json::obj([
            ("count", Json::str("0")),
            ("total", Json::str("0")),
            ("max", Json::str("0")),
            ("buckets", Json::Arr(vec![Json::int(0); BUCKETS + 1])),
        ]);
        assert!(PowHistogram::from_wire_json(&too_many).is_err());
    }

    #[test]
    fn quantiles_bracket_the_distribution() {
        let mut h = PowHistogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        assert!((16..=64).contains(&p50), "p50 {p50}");
        assert!(h.quantile(0.99) >= 1000);
        let summary = h.summary_json("us");
        assert_eq!(summary.get("count").unwrap().as_usize(), Some(5));
        assert_eq!(summary.get("max_us").unwrap().as_usize(), Some(1000));
    }
}
