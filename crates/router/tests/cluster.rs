//! Acceptance tests for the cluster router: a live 3-node loopback
//! cluster behind `folearn-cluster` must be indistinguishable — bit for
//! bit — from the in-process oracle, including with a backend killed
//! mid-workload and with one router→backend link garbled by the chaos
//! proxy.
//!
//! Cross-replica identity rests on canonical type keys: each backend
//! numbers types in its own arena, but `RemoteOracle` groups oracle
//! answers by `(type_keys, params, q)`, which agree across replicas.

use std::collections::HashMap;
use std::time::Duration;

use folearn_cluster::{start as start_router, RouterConfig, RouterHandle};
use folearn_graph::{generators, io, ColorId, Graph, Vocabulary};
use folearn_hardness::oracle::{BruteForceOracle, RemoteOracle};
use folearn_hardness::reduction::{model_check_via_erm, ReductionReport};
use folearn_logic::parse;
use folearn_server::{
    start as start_server, ChaosConfig, ChaosProxy, Client, ClientApi, ClientConfig,
    ClientError, Direction, FaultKind, Request, Response, RetryPolicy, ServerConfig,
    ServerHandle, SolverSpec, WireExample,
};

fn colored_path(n: usize, stride: usize) -> Graph {
    let g = generators::path(n, Vocabulary::new(["Red"]));
    generators::periodically_colored(&g, ColorId(0), stride)
}

fn spawn_backends(n: usize) -> (Vec<String>, HashMap<String, ServerHandle>) {
    let mut addrs = Vec::new();
    let mut by_addr = HashMap::new();
    for _ in 0..n {
        let h = start_server(&ServerConfig::default()).expect("backend starts");
        let a = h.addr().to_string();
        addrs.push(a.clone());
        by_addr.insert(a, h);
    }
    (addrs, by_addr)
}

fn router_over(backends: Vec<String>, replicas: usize) -> RouterHandle {
    start_router(&RouterConfig {
        backends,
        replicas,
        client: ClientConfig::with_deadline(Duration::from_secs(5)),
        retry: RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(20),
            seed: 7,
        },
        ..RouterConfig::default()
    })
    .expect("router starts")
}

fn reports_match(a: &ReductionReport, b: &ReductionReport, context: &str) {
    assert_eq!(a.result, b.result, "[{context}] verdict diverged");
    assert_eq!(a.oracle_calls, b.oracle_calls, "[{context}] call-count diverged");
    assert_eq!(
        a.realizable_calls, b.realizable_calls,
        "[{context}] realisability split diverged"
    );
    assert_eq!(
        a.representative_set_sizes, b.representative_set_sizes,
        "[{context}] Ramsey grouping diverged — canonical keys are not replica-independent"
    );
    assert_eq!(a.max_depth, b.max_depth, "[{context}] depth diverged");
}

const SENTENCES: [&str; 3] = [
    "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
    "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
    "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
];

fn baselines(g: &Graph) -> Vec<ReductionReport> {
    let vocab = g.vocab().as_ref().clone();
    SENTENCES
        .iter()
        .map(|s| {
            let phi = parse(s, &vocab).unwrap();
            let mut local = BruteForceOracle::new();
            model_check_via_erm(g, &phi, &mut local)
        })
        .collect()
}

#[test]
fn cluster_reduction_is_bit_identical_to_in_process() {
    let (addrs, by_addr) = spawn_backends(3);
    let router = router_over(addrs, 2);

    let g = colored_path(7, 3);
    let vocab = g.vocab().as_ref().clone();
    let expected = baselines(&g);

    let mut remote = RemoteOracle::connect(router.addr()).expect("oracle connects to router");
    for (s, baseline) in SENTENCES.iter().zip(&expected) {
        let phi = parse(s, &vocab).unwrap();
        let report = model_check_via_erm(&g, &phi, &mut remote);
        reports_match(&report, baseline, s);
    }

    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
}

#[test]
fn reduction_survives_a_backend_killed_mid_reduction() {
    let (addrs, mut by_addr) = spawn_backends(3);
    let router = router_over(addrs, 2);

    let g = colored_path(7, 3);
    let vocab = g.vocab().as_ref().clone();
    let expected = baselines(&g);

    // Register through a probe first so we know which backends hold the
    // structure — the kill must hit a replica that actually serves it.
    let mut probe = Client::connect(router.addr()).expect("probe connects");
    let ack = probe
        .call(&Request::Register {
            graph_text: io::to_text(&g),
        })
        .expect("register through router");
    let Response::Registered {
        replicas: Some(replicas),
        ..
    } = ack
    else {
        panic!("router register ack must list replicas")
    };
    assert_eq!(replicas.len(), 2, "R=2 placement");

    let mut remote = RemoteOracle::connect(router.addr()).expect("oracle connects");

    // First sentence with the whole cluster alive.
    let phi = parse(SENTENCES[0], &vocab).unwrap();
    reports_match(
        &model_check_via_erm(&g, &phi, &mut remote),
        &expected[0],
        SENTENCES[0],
    );

    // Kill the structure's primary replica while the second reduction
    // runs: the router must fail the affected calls over to the other
    // replica without the client noticing.
    let victim = by_addr.remove(&replicas[0]).expect("victim handle");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        victim.shutdown();
    });
    let phi = parse(SENTENCES[1], &vocab).unwrap();
    reports_match(
        &model_check_via_erm(&g, &phi, &mut remote),
        &expected[1],
        SENTENCES[1],
    );
    killer.join().unwrap();

    // And a whole reduction with the backend fully gone.
    let phi = parse(SENTENCES[2], &vocab).unwrap();
    reports_match(
        &model_check_via_erm(&g, &phi, &mut remote),
        &expected[2],
        SENTENCES[2],
    );

    // The router must have actually failed over (and, once the failure
    // streak crossed the threshold, ejected the dead backend).
    let stats = probe.stats().expect("router stats");
    let retries = stats.get("replica_retries").unwrap().as_usize().unwrap();
    let failovers = stats.get("failovers").unwrap().as_usize().unwrap();
    assert!(retries > 0, "backend died but no replica retry was recorded");
    assert!(failovers > 0, "dead backend was never ejected");

    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
}

#[test]
fn reduction_survives_one_garbled_router_backend_link() {
    let (mut addrs, by_addr) = spawn_backends(3);
    // Interpose the chaos proxy on the router's link to backend 1: a
    // fixed fraction of frames crossing that link get a byte flipped.
    let victim: std::net::SocketAddr = addrs[1].parse().unwrap();
    let proxy = ChaosProxy::start(
        victim,
        ChaosConfig {
            kind: FaultKind::Garble,
            rate: 0.10,
            delay: Duration::from_millis(100),
            direction: Direction::Both,
            seed: 0xC1A5,
        },
    )
    .expect("proxy starts");
    addrs[1] = proxy.addr().to_string();

    // R=3: every backend (including the garbled one) holds every
    // structure, so the poisoned link sees real traffic.
    let router = start_router(&RouterConfig {
        backends: addrs,
        replicas: 3,
        client: ClientConfig::with_deadline(Duration::from_millis(500)),
        retry: RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(40),
            seed: 3,
        },
        ..RouterConfig::default()
    })
    .expect("router starts");

    let g = colored_path(7, 3);
    let vocab = g.vocab().as_ref().clone();
    let expected = baselines(&g);

    let mut remote = RemoteOracle::connect(router.addr()).expect("oracle connects");
    for (s, baseline) in SENTENCES.iter().zip(&expected) {
        let phi = parse(s, &vocab).unwrap();
        let report = model_check_via_erm(&g, &phi, &mut remote);
        reports_match(&report, baseline, s);
    }
    assert!(proxy.faults_injected() > 0, "the garbled link saw no traffic");

    router.shutdown();
    proxy.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
}

#[test]
fn front_door_speaks_the_protocol_with_cluster_extensions() {
    let (addrs, by_addr) = spawn_backends(3);
    let backend_addrs: Vec<String> = addrs.clone();
    let router = router_over(addrs, 2);

    let mut c = Client::connect(router.addr()).expect("client connects");
    c.ping().expect("ping");

    // Unknown structure: coded error, no backend involved.
    let err = c
        .modelcheck(0xdead_beef, "exists x0. Red(x0)")
        .expect_err("unknown structure must fail");
    match err {
        ClientError::Server { code, message } => {
            assert_eq!(code.as_deref(), Some("unknown_structure"));
            assert!(message.contains("dead"), "message names the hash: {message}");
        }
        other => panic!("wanted coded server error, got {other}"),
    }

    // Register: ack lists the replica set.
    let g = colored_path(8, 4);
    let ack = c
        .call(&Request::Register {
            graph_text: io::to_text(&g),
        })
        .expect("register");
    let Response::Registered {
        structure,
        fresh,
        replicas: Some(replicas),
        ..
    } = ack
    else {
        panic!("wanted registered ack with replicas")
    };
    assert!(fresh);
    assert_eq!(replicas.len(), 2);
    for r in &replicas {
        assert!(backend_addrs.contains(r), "replica {r} is not a backend");
    }

    // Solve: the reply carries provenance naming a real backend, and the
    // hypothesis id is router-assigned and usable.
    let examples = vec![
        WireExample {
            tuple: vec![0],
            label: false,
        },
        WireExample {
            tuple: vec![1],
            label: true,
        },
    ];
    let outcome = c
        .solve(structure, examples, 1, 0, 0.25, SolverSpec::default_brute())
        .expect("solve through router");
    let prov = outcome.provenance.expect("router attaches provenance");
    assert!(replicas.contains(&prov.backend), "provenance names a replica");
    assert!(
        !outcome.hypothesis.type_keys.is_empty(),
        "canonical keys ride along"
    );

    // Evaluate against the router id.
    let tuples: Vec<Vec<u32>> = (0..8).map(|v| vec![v]).collect();
    let (preds, _) = c
        .evaluate(structure, outcome.hypothesis.id, tuples, None)
        .expect("evaluate through router");
    assert_eq!(preds.len(), 8);

    // Unknown hypothesis: coded error.
    let err = c
        .evaluate(structure, 0x4242, vec![vec![0]], None)
        .expect_err("unknown hypothesis must fail");
    match err {
        ClientError::Server { code, .. } => {
            assert_eq!(code.as_deref(), Some("unknown_hypothesis"));
        }
        other => panic!("wanted coded server error, got {other}"),
    }

    // Modelcheck with provenance, and router-flavoured stats.
    assert!(c
        .modelcheck(structure, "exists x0. Red(x0)")
        .expect("modelcheck"));
    let stats = c.stats().expect("stats");
    assert_eq!(
        stats.get("role").and_then(|r| r.as_str()),
        Some("router"),
        "router stats are distinguishable from backend stats"
    );
    assert!(stats.get("hedges_fired").is_some());
    let rows = stats.get("backends").unwrap().as_arr().unwrap();
    assert_eq!(rows.len(), 3);

    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
}

#[test]
fn anti_entropy_repairs_a_restarted_backend() {
    // Two live backends plus one address that is down from the start —
    // the "restarted empty" backend. Reserving the port with a listener
    // that never accepts leaves no TIME_WAIT behind, so the real daemon
    // can bind it later.
    let (mut addrs, by_addr) = spawn_backends(2);
    let reserved = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let late_addr = reserved.local_addr().unwrap().to_string();
    drop(reserved);
    addrs.push(late_addr.clone());

    // R=3: everything is placed everywhere, including on the dead node.
    let router = start_router(&RouterConfig {
        backends: addrs,
        replicas: 3,
        client: ClientConfig::with_deadline(Duration::from_secs(5)),
        repair_interval: Some(Duration::from_millis(50)),
        ..RouterConfig::default()
    })
    .expect("router starts");

    let mut c = Client::connect(router.addr()).expect("client connects");
    let g = colored_path(8, 4);
    let structure = c.register(&io::to_text(&g)).expect("register");
    let examples = vec![
        WireExample {
            tuple: vec![0],
            label: false,
        },
        WireExample {
            tuple: vec![1],
            label: true,
        },
    ];
    let outcome = c
        .solve(structure, examples, 1, 0, 0.25, SolverSpec::default_brute())
        .expect("solve");
    let tuples: Vec<Vec<u32>> = (0..8).map(|v| vec![v]).collect();
    let (before, _) = c
        .evaluate(structure, outcome.hypothesis.id, tuples.clone(), None)
        .expect("evaluate");

    // The dead replica comes up empty. The router's anti-entropy pass
    // must notice, re-seed the structure, and replicate the hypothesis
    // binding — all without any client traffic demanding it.
    let late = start_server(&ServerConfig {
        addr: late_addr.clone(),
        ..ServerConfig::default()
    })
    .expect("late backend binds the reserved address");

    let (mut repairs, mut avoided) = (0, 0);
    for _ in 0..100 {
        let stats = c.stats().expect("router stats");
        repairs = stats.get("repairs_performed").unwrap().as_usize().unwrap();
        avoided = stats.get("rebinds_avoided").unwrap().as_usize().unwrap();
        if repairs >= 1 && avoided >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(repairs >= 1, "the lost structure was never re-seeded");
    assert!(avoided >= 1, "the hypothesis binding was never replicated");

    // The repaired backend really holds the state: ask it directly.
    let mut direct = Client::connect(late.addr()).expect("connect to repaired backend");
    let (structures, hyps) = direct.inventory().expect("inventory");
    assert!(
        structures.contains(&structure),
        "repaired backend lacks the structure"
    );
    assert!(
        hyps.iter().any(|b| b.structure == structure),
        "repaired backend lacks the replicated hypothesis"
    );

    // And the cluster still answers identically through the front door.
    let (after, _) = c
        .evaluate(structure, outcome.hypothesis.id, tuples, None)
        .expect("evaluate after repair");
    assert_eq!(before, after);

    router.shutdown();
    late.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
}

#[test]
fn evaluate_rebinds_after_the_learning_backend_dies() {
    let (addrs, mut by_addr) = spawn_backends(3);
    let router = router_over(addrs, 2);

    let mut c = Client::connect(router.addr()).expect("client connects");
    let g = colored_path(8, 4);
    let structure = c.register(&io::to_text(&g)).expect("register");
    let examples = vec![
        WireExample {
            tuple: vec![0],
            label: false,
        },
        WireExample {
            tuple: vec![1],
            label: true,
        },
    ];
    let outcome = c
        .solve(structure, examples, 1, 0, 0.25, SolverSpec::default_brute())
        .expect("solve");
    let prov = outcome.provenance.expect("provenance");
    let hyp = outcome.hypothesis.id;

    let tuples: Vec<Vec<u32>> = (0..8).map(|v| vec![v]).collect();
    let (before, _) = c.evaluate(structure, hyp, tuples.clone(), None).expect("evaluate");

    // Kill exactly the backend that learned the hypothesis. The router
    // must rebind by re-solving on a surviving replica — deterministic
    // solver, canonical structure text — and answer identically.
    let victim = by_addr.remove(&prov.backend).expect("victim handle");
    victim.shutdown();

    let (after, _) = c
        .evaluate(structure, hyp, tuples, None)
        .expect("evaluate after backend death");
    assert_eq!(before, after, "rebound hypothesis predicts differently");

    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
}
