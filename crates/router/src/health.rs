//! Backend health: consecutive-failure ejection, traffic-driven
//! re-probes, and the cadence of the background anti-entropy pass.
//!
//! Health is primarily piggybacked on real traffic: every backend call
//! reports its outcome here. A backend that fails
//! [`Health::eject_after`] times in a row is *ejected*: the replica
//! selector skips it, so requests stop paying its connect timeout.
//! Ejected backends are still probed — every [`PROBE_PERIOD`]th
//! selection includes one ejected backend at the tail of the candidate
//! list — and a single success restores them.
//!
//! On top of that, the router runs one background maintenance thread
//! driven by [`run_probe_loop`]: each tick it sweeps every backend's
//! `inventory` and repairs the diff against the router's placement
//! tables (anti-entropy; the sweep itself lives in `router.rs`). The
//! sweep doubles as an active health probe — a successful exchange
//! restores an ejected backend even with zero client traffic, and a
//! dead one takes its strikes here instead of on a client's request.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Include an ejected backend as a tail candidate once per this many
/// selections, so a recovered node rejoins without operator action.
pub const PROBE_PERIOD: u64 = 16;

/// Health state of one backend.
#[derive(Debug)]
pub struct Health {
    consecutive_failures: AtomicU32,
    ejected: AtomicBool,
    /// Consecutive failures that trigger ejection.
    eject_after: u32,
    /// Total ejection events (monotonic; feeds the `failovers` counter).
    ejections: AtomicU64,
}

impl Health {
    /// Fresh, live health state ejecting after `eject_after`
    /// consecutive failures (minimum 1).
    pub fn new(eject_after: u32) -> Self {
        Self {
            consecutive_failures: AtomicU32::new(0),
            ejected: AtomicBool::new(false),
            eject_after: eject_after.max(1),
            ejections: AtomicU64::new(0),
        }
    }

    /// Record a successful call: the backend is (back) in rotation.
    pub fn record_ok(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.ejected.store(false, Ordering::SeqCst);
    }

    /// Record a failed call; returns `true` if this failure ejected the
    /// backend (transition live → ejected).
    pub fn record_failure(&self) -> bool {
        let n = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= self.eject_after && !self.ejected.swap(true, Ordering::SeqCst) {
            self.ejections.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Whether the backend is currently in rotation.
    pub fn is_live(&self) -> bool {
        !self.ejected.load(Ordering::SeqCst)
    }

    /// Consecutive failures so far.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// Total live → ejected transitions.
    pub fn ejections(&self) -> u64 {
        self.ejections.load(Ordering::SeqCst)
    }
}

/// Run `pass` every `interval` until `shutdown` flips, sleeping in
/// short slices (≤50ms) so shutdown latency stays bounded no matter how
/// long the interval is. The first pass runs one full interval after
/// start — a freshly booted router has nothing to repair yet.
pub fn run_probe_loop(shutdown: &AtomicBool, interval: Duration, mut pass: impl FnMut()) {
    let slice = if interval < Duration::from_millis(50) {
        interval.max(Duration::from_millis(1))
    } else {
        Duration::from_millis(50)
    };
    let mut since_pass = Duration::ZERO;
    while !shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(slice);
        since_pass += slice;
        if since_pass >= interval {
            since_pass = Duration::ZERO;
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            pass();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejects_after_threshold_and_probes_back() {
        let h = Health::new(3);
        assert!(h.is_live());
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        assert!(h.record_failure(), "third consecutive failure ejects");
        assert!(!h.is_live());
        assert!(!h.record_failure(), "already ejected: no second event");
        assert_eq!(h.ejections(), 1);
        h.record_ok();
        assert!(h.is_live());
        assert_eq!(h.consecutive_failures(), 0);
    }

    #[test]
    fn probe_loop_fires_and_stops_on_shutdown() {
        use std::sync::atomic::AtomicUsize;
        use std::sync::Arc;

        let shutdown = Arc::new(AtomicBool::new(false));
        let ticks = Arc::new(AtomicUsize::new(0));
        let handle = {
            let shutdown = Arc::clone(&shutdown);
            let ticks = Arc::clone(&ticks);
            std::thread::spawn(move || {
                run_probe_loop(&shutdown, Duration::from_millis(5), || {
                    ticks.fetch_add(1, Ordering::SeqCst);
                });
            })
        };
        for _ in 0..200 {
            if ticks.load(Ordering::SeqCst) > 0 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(ticks.load(Ordering::SeqCst) > 0, "the pass never fired");
        shutdown.store(true, Ordering::SeqCst);
        handle.join().unwrap();
    }

    #[test]
    fn probe_loop_exits_immediately_when_already_shut_down() {
        let shutdown = AtomicBool::new(true);
        let mut fired = false;
        run_probe_loop(&shutdown, Duration::from_millis(1), || fired = true);
        assert!(!fired);
    }

    #[test]
    fn success_resets_the_streak() {
        let h = Health::new(2);
        assert!(!h.record_failure());
        h.record_ok();
        assert!(!h.record_failure(), "streak restarted after a success");
        assert!(h.is_live());
    }
}
