//! Backend health: consecutive-failure ejection with occasional
//! re-probes.
//!
//! The router does not run a background health checker; health is
//! piggybacked on real traffic. Every backend call reports its outcome
//! here. A backend that fails [`Health::eject_after`] times in a row is
//! *ejected*: the replica selector skips it, so requests stop paying
//! its connect timeout. Ejected backends are still probed — every
//! [`PROBE_PERIOD`]th selection includes one ejected backend at the
//! tail of the candidate list — and a single success restores them.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};

/// Include an ejected backend as a tail candidate once per this many
/// selections, so a recovered node rejoins without operator action.
pub const PROBE_PERIOD: u64 = 16;

/// Health state of one backend.
#[derive(Debug)]
pub struct Health {
    consecutive_failures: AtomicU32,
    ejected: AtomicBool,
    /// Consecutive failures that trigger ejection.
    eject_after: u32,
    /// Total ejection events (monotonic; feeds the `failovers` counter).
    ejections: AtomicU64,
}

impl Health {
    /// Fresh, live health state ejecting after `eject_after`
    /// consecutive failures (minimum 1).
    pub fn new(eject_after: u32) -> Self {
        Self {
            consecutive_failures: AtomicU32::new(0),
            ejected: AtomicBool::new(false),
            eject_after: eject_after.max(1),
            ejections: AtomicU64::new(0),
        }
    }

    /// Record a successful call: the backend is (back) in rotation.
    pub fn record_ok(&self) {
        self.consecutive_failures.store(0, Ordering::SeqCst);
        self.ejected.store(false, Ordering::SeqCst);
    }

    /// Record a failed call; returns `true` if this failure ejected the
    /// backend (transition live → ejected).
    pub fn record_failure(&self) -> bool {
        let n = self.consecutive_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if n >= self.eject_after && !self.ejected.swap(true, Ordering::SeqCst) {
            self.ejections.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Whether the backend is currently in rotation.
    pub fn is_live(&self) -> bool {
        !self.ejected.load(Ordering::SeqCst)
    }

    /// Consecutive failures so far.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures.load(Ordering::SeqCst)
    }

    /// Total live → ejected transitions.
    pub fn ejections(&self) -> u64 {
        self.ejections.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ejects_after_threshold_and_probes_back() {
        let h = Health::new(3);
        assert!(h.is_live());
        assert!(!h.record_failure());
        assert!(!h.record_failure());
        assert!(h.record_failure(), "third consecutive failure ejects");
        assert!(!h.is_live());
        assert!(!h.record_failure(), "already ejected: no second event");
        assert_eq!(h.ejections(), 1);
        h.record_ok();
        assert!(h.is_live());
        assert_eq!(h.consecutive_failures(), 0);
    }

    #[test]
    fn success_resets_the_streak() {
        let h = Health::new(2);
        assert!(!h.record_failure());
        h.record_ok();
        assert!(!h.record_failure(), "streak restarted after a success");
        assert!(h.is_live());
    }
}
