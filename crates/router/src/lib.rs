//! `folearn-cluster` — a consistent-hash router in front of N
//! `folearn serve` backends.
//!
//! The van Bergerem–Grohe–Ritzert learning problem shards cleanly:
//! hypotheses and model checks depend only on the structure they were
//! asked about (and, by Gaifman locality, only on local neighbourhoods
//! within it), so independent structures can live on independent nodes
//! with no cross-talk. The router exploits that:
//!
//! * **Placement** ([`ring`]) — structures are placed on a consistent
//!   hash ring (virtual nodes, FNV-1a points) keyed by their existing
//!   content hash, and replicated onto the first `R` distinct backends
//!   clockwise from the key. Adding or removing a backend moves only
//!   `~1/N` of the keys.
//! * **Hedged reads** ([`router`]) — `solve`, `evaluate`, and
//!   `modelcheck` fire at the primary replica; if no reply arrives
//!   within the hedge delay, a hedge fires at the next replica and the
//!   first valid reply wins (the laggard's answer is discarded when it
//!   arrives). Failures walk the replica ladder, so a killed backend
//!   costs one retry, not the request.
//! * **Health** ([`health`]) — a backend failing repeatedly is ejected
//!   from rotation and re-probed occasionally; a successful probe
//!   restores it.
//! * **Anti-entropy** ([`router`], paced by [`health`]) — a background
//!   pass diffs each backend's `inventory` against the router's
//!   placement tables, re-seeds structures a replica has lost, and
//!   replicates hypothesis bindings ahead of need, so a restarted
//!   backend is repaired before traffic finds the hole.
//!
//! The router speaks the *same* newline-delimited JSON protocol as the
//! backends on its front socket, so every existing client — the CLI,
//! the load generator, `folearn_hardness::oracle::RemoteOracle` —
//! works against a cluster unchanged. Replies gain a `provenance`
//! field naming the backend that actually answered; `register` acks
//! gain the replica list.
//!
//! Cross-backend answer identity rests on canonical type keys
//! (`folearn_types::canon`, surfaced as `type_keys` on wire
//! hypotheses): backends number types arena-relatively, but the
//! content hashes agree, so a reduction that groups oracle answers
//! stays bit-identical no matter which replica served each call.

pub mod health;
pub mod metrics;
pub mod ring;
pub mod router;

pub use ring::HashRing;
pub use router::{start, RouterConfig, RouterHandle};
