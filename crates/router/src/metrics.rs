//! Router metrics: front-door request accounting plus the cluster-level
//! counters that make hedging and failover auditable.
//!
//! Front-door requests reuse the power-of-two-microsecond latency
//! histograms of [`folearn_obs::PowHistogram`] (same resolution story as
//! the backend daemon's metrics). On top, the router tracks what no
//! single backend can see: hedges fired and won, replica retries,
//! failovers, and a per-backend request/error/ejection table. The
//! snapshot is the payload of the front-door `stats` op.

use folearn_obs::PowHistogram;
use folearn_server::proto::Json;
use parking_lot::Mutex;

/// Per-endpoint latency + count record (router-side, i.e. including
/// fan-out and hedging time).
struct OpRecord {
    op: &'static str,
    errors: u64,
    latency: PowHistogram,
}

impl OpRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("count".to_string(), Json::Num(self.latency.count() as f64)),
            ("errors".to_string(), Json::Num(self.errors as f64)),
        ];
        pairs.extend(self.latency.summary_pairs("us"));
        Json::Obj(pairs)
    }
}

/// Per-backend accounting row.
struct BackendRow {
    addr: String,
    requests: u64,
    errors: u64,
    ejections: u64,
    live: bool,
}

struct Inner {
    ops: Vec<OpRecord>,
    backends: Vec<BackendRow>,
    hedges_fired: u64,
    hedges_won: u64,
    replica_retries: u64,
    failovers: u64,
    structures: u64,
    hypotheses: u64,
}

/// Shared, thread-safe router metrics sink.
pub struct RouterMetrics {
    inner: Mutex<Inner>,
}

impl Default for RouterMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterMetrics {
    /// Fresh metrics with one all-zero row per backend address.
    pub fn new_with_backends(addrs: &[String]) -> Self {
        Self {
            inner: Mutex::new(Inner {
                ops: Vec::new(),
                backends: addrs
                    .iter()
                    .map(|a| BackendRow {
                        addr: a.clone(),
                        requests: 0,
                        errors: 0,
                        ejections: 0,
                        live: true,
                    })
                    .collect(),
                hedges_fired: 0,
                hedges_won: 0,
                replica_retries: 0,
                failovers: 0,
                structures: 0,
                hypotheses: 0,
            }),
        }
    }

    /// Fresh metrics with no backend rows (tests).
    pub fn new() -> Self {
        Self::new_with_backends(&[])
    }

    /// Record one front-door request.
    pub fn record_request(&self, op: &'static str, us: u64, ok: bool) {
        let mut inner = self.inner.lock();
        match inner.ops.iter_mut().find(|r| r.op == op) {
            Some(r) => {
                if !ok {
                    r.errors += 1;
                }
                r.latency.record(us);
            }
            None => {
                let mut r = OpRecord {
                    op,
                    errors: 0,
                    latency: PowHistogram::new(),
                };
                if !ok {
                    r.errors += 1;
                }
                r.latency.record(us);
                inner.ops.push(r);
            }
        }
    }

    /// Record one backend call outcome (by backend index).
    pub fn record_backend_call(&self, backend: usize, ok: bool) {
        let mut inner = self.inner.lock();
        if let Some(row) = inner.backends.get_mut(backend) {
            row.requests += 1;
            if !ok {
                row.errors += 1;
            }
        }
    }

    /// Record a backend ejection (live → ejected transition).
    pub fn record_ejection(&self, backend: usize) {
        let mut inner = self.inner.lock();
        if let Some(row) = inner.backends.get_mut(backend) {
            row.ejections += 1;
            row.live = false;
        }
        inner.failovers += 1;
        folearn_obs::count(folearn_obs::Counter::Failovers, 1);
    }

    /// Record a backend returning to rotation.
    pub fn record_recovery(&self, backend: usize) {
        let mut inner = self.inner.lock();
        if let Some(row) = inner.backends.get_mut(backend) {
            row.live = true;
        }
    }

    /// Record a hedge request fired.
    pub fn record_hedge_fired(&self) {
        self.inner.lock().hedges_fired += 1;
        folearn_obs::count(folearn_obs::Counter::HedgesFired, 1);
    }

    /// Record a request won by its hedge (not the primary).
    pub fn record_hedge_won(&self) {
        self.inner.lock().hedges_won += 1;
        folearn_obs::count(folearn_obs::Counter::HedgesWon, 1);
    }

    /// Record a retry on the next replica after a backend failure.
    pub fn record_replica_retry(&self) {
        self.inner.lock().replica_retries += 1;
        folearn_obs::count(folearn_obs::Counter::ReplicaRetries, 1);
    }

    /// Update the placement/hypothesis-table gauges.
    pub fn set_store_sizes(&self, structures: usize, hypotheses: usize) {
        let mut inner = self.inner.lock();
        inner.structures = structures as u64;
        inner.hypotheses = hypotheses as u64;
    }

    /// `(hedges_fired, hedges_won, replica_retries, failovers)` so far.
    pub fn cluster_counters(&self) -> (u64, u64, u64, u64) {
        let inner = self.inner.lock();
        (
            inner.hedges_fired,
            inner.hedges_won,
            inner.replica_retries,
            inner.failovers,
        )
    }

    /// Snapshot as a JSON object (the router's `stats` payload).
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock();
        let total: u64 = inner.ops.iter().map(|r| r.latency.count()).sum();
        Json::obj([
            ("role", Json::str("router")),
            ("requests", Json::Num(total as f64)),
            ("hedges_fired", Json::Num(inner.hedges_fired as f64)),
            ("hedges_won", Json::Num(inner.hedges_won as f64)),
            (
                "replica_retries",
                Json::Num(inner.replica_retries as f64),
            ),
            ("failovers", Json::Num(inner.failovers as f64)),
            ("structures", Json::Num(inner.structures as f64)),
            ("hypotheses", Json::Num(inner.hypotheses as f64)),
            (
                "endpoints",
                Json::Obj(
                    inner
                        .ops
                        .iter()
                        .map(|r| (r.op.to_string(), r.to_json()))
                        .collect(),
                ),
            ),
            (
                "backends",
                Json::Arr(
                    inner
                        .backends
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("addr", Json::str(b.addr.clone())),
                                ("requests", Json::Num(b.requests as f64)),
                                ("errors", Json::Num(b.errors as f64)),
                                ("ejections", Json::Num(b.ejections as f64)),
                                ("live", Json::Bool(b.live)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_cluster_counters_and_backend_rows() {
        let m = RouterMetrics::new_with_backends(&[
            "127.0.0.1:1".to_string(),
            "127.0.0.1:2".to_string(),
        ]);
        m.record_request("solve", 100, true);
        m.record_request("solve", 200, false);
        m.record_backend_call(0, true);
        m.record_backend_call(1, false);
        m.record_ejection(1);
        m.record_hedge_fired();
        m.record_hedge_won();
        m.record_replica_retry();
        let snap = m.snapshot();
        assert_eq!(snap.get("requests").unwrap().as_usize(), Some(2));
        assert_eq!(snap.get("hedges_fired").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("hedges_won").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("replica_retries").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("failovers").unwrap().as_usize(), Some(1));
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("errors").unwrap().as_usize(), Some(1));
        let rows = snap.get("backends").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("errors").unwrap().as_usize(), Some(1));
        assert_eq!(rows[1].get("ejections").unwrap().as_usize(), Some(1));
        assert_eq!(rows[1].get("live").unwrap().as_bool(), Some(false));
        m.record_recovery(1);
        let snap = m.snapshot();
        let rows = snap.get("backends").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].get("live").unwrap().as_bool(), Some(true));
        assert_eq!(m.cluster_counters(), (1, 1, 1, 1));
    }
}
