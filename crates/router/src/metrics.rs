//! Router metrics: front-door request accounting plus the cluster-level
//! counters that make hedging and failover auditable.
//!
//! Front-door requests reuse the power-of-two-microsecond latency
//! histograms of [`folearn_obs::PowHistogram`] (same resolution story as
//! the backend daemon's metrics). On top, the router tracks what no
//! single backend can see: hedges fired and won, replica retries,
//! failovers, anti-entropy repairs (structures re-seeded, hypothesis
//! bindings replicated ahead of need), and a per-backend
//! request/error/ejection table. The snapshot is the payload of the
//! front-door `stats` op.

use std::time::Instant;

use folearn_obs::{PowHistogram, TimeSeries};
use folearn_server::proto::Json;
use parking_lot::Mutex;

/// Per-endpoint latency + count record (router-side, i.e. including
/// fan-out and hedging time).
struct OpRecord {
    op: &'static str,
    errors: u64,
    latency: PowHistogram,
}

impl OpRecord {
    fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("count".to_string(), Json::Num(self.latency.count() as f64)),
            ("errors".to_string(), Json::Num(self.errors as f64)),
        ];
        pairs.extend(self.latency.summary_pairs("us"));
        Json::Obj(pairs)
    }
}

/// Per-backend accounting row.
struct BackendRow {
    addr: String,
    requests: u64,
    errors: u64,
    ejections: u64,
    live: bool,
}

struct Inner {
    ops: Vec<OpRecord>,
    backends: Vec<BackendRow>,
    hedges_fired: u64,
    hedges_won: u64,
    replica_retries: u64,
    failovers: u64,
    repairs_performed: u64,
    rebinds_avoided: u64,
    rejected_connections: u64,
    structures: u64,
    hypotheses: u64,
    series: TimeSeries,
}

/// Shared, thread-safe router metrics sink.
pub struct RouterMetrics {
    inner: Mutex<Inner>,
    start: Instant,
}

impl Default for RouterMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl RouterMetrics {
    /// Fresh metrics with one all-zero row per backend address.
    pub fn new_with_backends(addrs: &[String]) -> Self {
        Self {
            inner: Mutex::new(Inner {
                ops: Vec::new(),
                backends: addrs
                    .iter()
                    .map(|a| BackendRow {
                        addr: a.clone(),
                        requests: 0,
                        errors: 0,
                        ejections: 0,
                        live: true,
                    })
                    .collect(),
                hedges_fired: 0,
                hedges_won: 0,
                replica_retries: 0,
                failovers: 0,
                repairs_performed: 0,
                rebinds_avoided: 0,
                rejected_connections: 0,
                structures: 0,
                hypotheses: 0,
                series: TimeSeries::new(),
            }),
            start: Instant::now(),
        }
    }

    /// Fresh metrics with no backend rows (tests).
    pub fn new() -> Self {
        Self::new_with_backends(&[])
    }

    /// Record one front-door request.
    pub fn record_request(&self, op: &'static str, us: u64, ok: bool) {
        let mut inner = self.inner.lock();
        match inner.ops.iter_mut().find(|r| r.op == op) {
            Some(r) => {
                if !ok {
                    r.errors += 1;
                }
                r.latency.record(us);
            }
            None => {
                let mut r = OpRecord {
                    op,
                    errors: 0,
                    latency: PowHistogram::new(),
                };
                if !ok {
                    r.errors += 1;
                }
                r.latency.record(us);
                inner.ops.push(r);
            }
        }
        inner.series.record_request(us, ok);
    }

    /// Record whether a routed solve came back backend-cached (the
    /// router has no cache of its own; this is the cluster's hit rate
    /// as seen from the front door).
    pub fn record_cache_event(&self, hit: bool) {
        self.inner.lock().series.record_cache(hit);
    }

    /// Record one backend call outcome (by backend index).
    pub fn record_backend_call(&self, backend: usize, ok: bool) {
        let mut inner = self.inner.lock();
        if let Some(row) = inner.backends.get_mut(backend) {
            row.requests += 1;
            if !ok {
                row.errors += 1;
            }
        }
    }

    /// Record a backend ejection (live → ejected transition).
    pub fn record_ejection(&self, backend: usize) {
        let mut inner = self.inner.lock();
        if let Some(row) = inner.backends.get_mut(backend) {
            row.ejections += 1;
            row.live = false;
        }
        inner.failovers += 1;
        folearn_obs::count(folearn_obs::Counter::Failovers, 1);
    }

    /// Record a backend returning to rotation.
    pub fn record_recovery(&self, backend: usize) {
        let mut inner = self.inner.lock();
        if let Some(row) = inner.backends.get_mut(backend) {
            row.live = true;
        }
    }

    /// Record a hedge request fired.
    pub fn record_hedge_fired(&self) {
        let mut inner = self.inner.lock();
        inner.hedges_fired += 1;
        inner.series.record_hedge(false);
        folearn_obs::count(folearn_obs::Counter::HedgesFired, 1);
    }

    /// Record a connection turned away at the concurrency cap or on a
    /// failed connection-thread spawn.
    pub fn record_rejected_connection(&self) {
        self.inner.lock().rejected_connections += 1;
    }

    /// Record a request won by its hedge (not the primary).
    pub fn record_hedge_won(&self) {
        let mut inner = self.inner.lock();
        inner.hedges_won += 1;
        inner.series.record_hedge_won();
        folearn_obs::count(folearn_obs::Counter::HedgesWon, 1);
    }

    /// Record a retry on the next replica after a backend failure.
    pub fn record_replica_retry(&self) {
        self.inner.lock().replica_retries += 1;
        folearn_obs::count(folearn_obs::Counter::ReplicaRetries, 1);
    }

    /// Record one anti-entropy repair: a structure re-seeded onto a
    /// backend whose inventory had lost it.
    pub fn record_repair(&self) {
        self.inner.lock().repairs_performed += 1;
    }

    /// Record one hypothesis binding replicated ahead of need by the
    /// anti-entropy pass — an evaluate-time re-solve that will now
    /// never happen.
    pub fn record_rebind_avoided(&self) {
        self.inner.lock().rebinds_avoided += 1;
    }

    /// `(repairs_performed, rebinds_avoided)` so far.
    pub fn repair_counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.repairs_performed, inner.rebinds_avoided)
    }

    /// Update the placement/hypothesis-table gauges.
    pub fn set_store_sizes(&self, structures: usize, hypotheses: usize) {
        let mut inner = self.inner.lock();
        inner.structures = structures as u64;
        inner.hypotheses = hypotheses as u64;
    }

    /// `(hedges_fired, hedges_won, replica_retries, failovers)` so far.
    pub fn cluster_counters(&self) -> (u64, u64, u64, u64) {
        let inner = self.inner.lock();
        (
            inner.hedges_fired,
            inner.hedges_won,
            inner.replica_retries,
            inner.failovers,
        )
    }

    /// Snapshot as a JSON object (the router's `stats` payload).
    pub fn snapshot(&self) -> Json {
        let inner = self.inner.lock();
        let total: u64 = inner.ops.iter().map(|r| r.latency.count()).sum();
        Json::obj([
            ("role", Json::str("router")),
            ("version", Json::str(env!("CARGO_PKG_VERSION"))),
            (
                "uptime_ms",
                Json::Num(self.start.elapsed().as_millis() as f64),
            ),
            ("requests", Json::Num(total as f64)),
            ("hedges_fired", Json::Num(inner.hedges_fired as f64)),
            ("hedges_won", Json::Num(inner.hedges_won as f64)),
            (
                "replica_retries",
                Json::Num(inner.replica_retries as f64),
            ),
            ("failovers", Json::Num(inner.failovers as f64)),
            (
                "repairs_performed",
                Json::Num(inner.repairs_performed as f64),
            ),
            (
                "rebinds_avoided",
                Json::Num(inner.rebinds_avoided as f64),
            ),
            (
                "rejected_connections",
                Json::Num(inner.rejected_connections as f64),
            ),
            ("structures", Json::Num(inner.structures as f64)),
            ("hypotheses", Json::Num(inner.hypotheses as f64)),
            (
                "endpoints",
                Json::Obj(
                    inner
                        .ops
                        .iter()
                        .map(|r| (r.op.to_string(), r.to_json()))
                        .collect(),
                ),
            ),
            (
                "backends",
                Json::Arr(
                    inner
                        .backends
                        .iter()
                        .map(|b| {
                            Json::obj([
                                ("addr", Json::str(b.addr.clone())),
                                ("requests", Json::Num(b.requests as f64)),
                                ("errors", Json::Num(b.errors as f64)),
                                ("ejections", Json::Num(b.ejections as f64)),
                                ("live", Json::Bool(b.live)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("series", inner.series.to_json()),
        ])
    }
}

// ---------------------------------------------------------------------
// cluster fan-in: merge backend stats snapshots into one view
// ---------------------------------------------------------------------

/// One backend's contribution to the cluster stats fan-in: its health
/// state as the router sees it, and either its `stats` snapshot or the
/// error that kept it from reporting.
pub struct NodeStats {
    pub addr: String,
    pub live: bool,
    pub ejections: u64,
    pub consecutive_failures: u32,
    pub stats: Result<Json, String>,
}

fn num_at(v: &Json, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0.0,
        }
    }
    cur.as_num().unwrap_or(0.0)
}

/// Merge backend `stats` snapshots into the cluster-wide view the
/// router serves under the `cluster` key: counters summed across
/// reporting backends, endpoint latency histograms merged bucket-wise
/// (via the full-resolution `hist` wire form each backend attaches),
/// and one row per node with its health/ejection state and identity.
pub fn aggregate_cluster(nodes: &[NodeStats]) -> Json {
    let reporting: Vec<&NodeStats> = nodes.iter().filter(|n| n.stats.is_ok()).collect();
    let sum = |path: &[&str]| -> f64 {
        reporting
            .iter()
            .map(|n| num_at(n.stats.as_ref().expect("filtered Ok"), path))
            .sum()
    };
    let cache_hits = sum(&["cache", "hits"]);
    let cache_misses = sum(&["cache", "misses"]);
    let lookups = cache_hits + cache_misses;
    let hit_rate = if lookups == 0.0 {
        0.0
    } else {
        cache_hits / lookups
    };

    // Merge per-endpoint histograms bucket-wise. Ops without a `hist`
    // key (older backends) are skipped rather than mis-averaged.
    let mut endpoints: Vec<(String, u64, PowHistogram)> = Vec::new();
    for n in &reporting {
        let snap = n.stats.as_ref().expect("filtered Ok");
        let Some(Json::Obj(ops)) = snap.get("endpoints") else {
            continue;
        };
        for (op, rec) in ops {
            let Some(hist) = rec.get("hist").and_then(|h| PowHistogram::from_wire_json(h).ok())
            else {
                continue;
            };
            let errors = num_at(rec, &["errors"]) as u64;
            match endpoints.iter_mut().find(|(name, _, _)| name == op) {
                Some((_, e, h)) => {
                    *e += errors;
                    h.merge(&hist);
                }
                None => endpoints.push((op.clone(), errors, hist)),
            }
        }
    }

    let node_rows: Vec<Json> = nodes
        .iter()
        .map(|n| {
            let mut pairs = vec![
                ("addr".to_string(), Json::str(n.addr.clone())),
                ("live".to_string(), Json::Bool(n.live)),
                ("ejections".to_string(), Json::Num(n.ejections as f64)),
                (
                    "consecutive_failures".to_string(),
                    Json::Num(f64::from(n.consecutive_failures)),
                ),
            ];
            match &n.stats {
                Ok(snap) => {
                    // `durable` rides along verbatim so `folearn top`
                    // can tell a WAL-backed node from a volatile one.
                    for key in ["role", "version", "durable"] {
                        if let Some(v) = snap.get(key) {
                            pairs.push((key.to_string(), v.clone()));
                        }
                    }
                    for key in [
                        "uptime_ms",
                        "requests",
                        "worker_panics",
                        "wal_records_replayed",
                        "snapshot_loads",
                        "torn_tail_truncations",
                        "recovery_ms",
                    ] {
                        pairs.push((key.to_string(), Json::Num(num_at(snap, &[key]))));
                    }
                    pairs.push((
                        "cache_hits".to_string(),
                        Json::Num(num_at(snap, &["cache", "hits"])),
                    ));
                }
                Err(e) => pairs.push(("error".to_string(), Json::str(e.clone()))),
            }
            Json::Obj(pairs)
        })
        .collect();

    Json::obj([
        ("backends_total", Json::int(nodes.len())),
        (
            "backends_live",
            Json::int(nodes.iter().filter(|n| n.live).count()),
        ),
        ("backends_reporting", Json::int(reporting.len())),
        ("requests", Json::Num(sum(&["requests"]))),
        ("connections", Json::Num(sum(&["connections"]))),
        ("structures", Json::Num(sum(&["structures"]))),
        ("hypotheses", Json::Num(sum(&["hypotheses"]))),
        ("worker_panics", Json::Num(sum(&["worker_panics"]))),
        (
            "cache",
            Json::obj([
                ("hits", Json::Num(cache_hits)),
                ("misses", Json::Num(cache_misses)),
                ("evictions", Json::Num(sum(&["cache", "evictions"]))),
                ("entries", Json::Num(sum(&["cache", "entries"]))),
                ("hit_rate", Json::Num(hit_rate)),
            ]),
        ),
        (
            "solver",
            Json::obj([
                (
                    "evaluated_params",
                    Json::Num(sum(&["solver", "evaluated_params"])),
                ),
                (
                    "pruned_params",
                    Json::Num(sum(&["solver", "pruned_params"])),
                ),
            ]),
        ),
        (
            "endpoints",
            Json::Obj(
                endpoints
                    .iter()
                    .map(|(op, errors, hist)| {
                        let mut pairs = vec![
                            ("count".to_string(), Json::Num(hist.count() as f64)),
                            ("errors".to_string(), Json::Num(*errors as f64)),
                        ];
                        pairs.extend(hist.summary_pairs("us"));
                        pairs.push(("hist".to_string(), hist.to_wire_json()));
                        (op.clone(), Json::Obj(pairs))
                    })
                    .collect(),
            ),
        ),
        ("nodes", Json::Arr(node_rows)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_carries_cluster_counters_and_backend_rows() {
        let m = RouterMetrics::new_with_backends(&[
            "127.0.0.1:1".to_string(),
            "127.0.0.1:2".to_string(),
        ]);
        m.record_request("solve", 100, true);
        m.record_request("solve", 200, false);
        m.record_backend_call(0, true);
        m.record_backend_call(1, false);
        m.record_ejection(1);
        m.record_hedge_fired();
        m.record_hedge_won();
        m.record_replica_retry();
        m.record_repair();
        m.record_repair();
        m.record_rebind_avoided();
        let snap = m.snapshot();
        assert_eq!(snap.get("requests").unwrap().as_usize(), Some(2));
        assert_eq!(snap.get("hedges_fired").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("hedges_won").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("replica_retries").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("failovers").unwrap().as_usize(), Some(1));
        assert_eq!(snap.get("repairs_performed").unwrap().as_usize(), Some(2));
        assert_eq!(snap.get("rebinds_avoided").unwrap().as_usize(), Some(1));
        assert_eq!(m.repair_counters(), (2, 1));
        let solve = snap.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("errors").unwrap().as_usize(), Some(1));
        let rows = snap.get("backends").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("errors").unwrap().as_usize(), Some(1));
        assert_eq!(rows[1].get("ejections").unwrap().as_usize(), Some(1));
        assert_eq!(rows[1].get("live").unwrap().as_bool(), Some(false));
        m.record_recovery(1);
        let snap = m.snapshot();
        let rows = snap.get("backends").unwrap().as_arr().unwrap();
        assert_eq!(rows[1].get("live").unwrap().as_bool(), Some(true));
        assert_eq!(m.cluster_counters(), (1, 1, 1, 1));
    }

    #[test]
    fn snapshot_reports_identity_uptime_and_series() {
        let m = RouterMetrics::new();
        m.record_request("solve", 100, true);
        m.record_cache_event(true);
        m.record_hedge_fired();
        m.record_hedge_won();
        let snap = m.snapshot();
        assert_eq!(snap.get("role").and_then(Json::as_str), Some("router"));
        assert_eq!(
            snap.get("version").and_then(Json::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(snap.get("uptime_ms").and_then(Json::as_num).is_some());
        let buckets = snap
            .get("series")
            .and_then(|s| s.get("buckets"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(buckets.len(), 1);
        let b = &buckets[0];
        assert_eq!(b.get("requests").and_then(Json::as_usize), Some(1));
        assert_eq!(b.get("cache_hits").and_then(Json::as_usize), Some(1));
        assert_eq!(b.get("hedges_fired").and_then(Json::as_usize), Some(1));
        assert_eq!(b.get("hedges_won").and_then(Json::as_usize), Some(1));
    }

    /// A fake backend snapshot with just the fields aggregation reads.
    fn backend_snap(requests: f64, hits: f64, misses: f64, solve_us: &[u64]) -> Json {
        let mut hist = PowHistogram::new();
        for &us in solve_us {
            hist.record(us);
        }
        Json::obj([
            ("role", Json::str("server")),
            ("version", Json::str("0.1.0")),
            ("uptime_ms", Json::Num(1234.0)),
            ("requests", Json::Num(requests)),
            ("connections", Json::Num(2.0)),
            ("structures", Json::Num(1.0)),
            ("hypotheses", Json::Num(1.0)),
            ("worker_panics", Json::Num(0.0)),
            (
                "cache",
                Json::obj([
                    ("hits", Json::Num(hits)),
                    ("misses", Json::Num(misses)),
                    ("evictions", Json::Num(0.0)),
                    ("entries", Json::Num(misses)),
                ]),
            ),
            (
                "solver",
                Json::obj([
                    ("evaluated_params", Json::Num(10.0)),
                    ("pruned_params", Json::Num(5.0)),
                ]),
            ),
            (
                "endpoints",
                Json::obj([(
                    "solve",
                    Json::obj([
                        ("count", Json::Num(solve_us.len() as f64)),
                        ("errors", Json::Num(1.0)),
                        ("hist", hist.to_wire_json()),
                    ]),
                )]),
            ),
        ])
    }

    #[test]
    fn aggregation_sums_counters_and_merges_histograms_bucket_wise() {
        let nodes = vec![
            NodeStats {
                addr: "127.0.0.1:1".to_string(),
                live: true,
                ejections: 0,
                consecutive_failures: 0,
                stats: Ok(backend_snap(10.0, 4.0, 6.0, &[10, 20, 30])),
            },
            NodeStats {
                addr: "127.0.0.1:2".to_string(),
                live: true,
                ejections: 1,
                consecutive_failures: 0,
                stats: Ok(backend_snap(5.0, 2.0, 2.0, &[5000, 6000])),
            },
            NodeStats {
                addr: "127.0.0.1:3".to_string(),
                live: false,
                ejections: 2,
                consecutive_failures: 7,
                stats: Err("connect refused".to_string()),
            },
        ];
        let agg = aggregate_cluster(&nodes);
        assert_eq!(agg.get("backends_total").and_then(Json::as_usize), Some(3));
        assert_eq!(agg.get("backends_live").and_then(Json::as_usize), Some(2));
        assert_eq!(
            agg.get("backends_reporting").and_then(Json::as_usize),
            Some(2)
        );
        assert_eq!(agg.get("requests").and_then(Json::as_usize), Some(15));
        let cache = agg.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Json::as_usize), Some(6));
        assert_eq!(cache.get("misses").and_then(Json::as_usize), Some(8));
        assert_eq!(cache.get("hit_rate").and_then(Json::as_num), Some(6.0 / 14.0));
        // The merged solve histogram holds all five samples, and its
        // quantiles see both nodes' latency regimes.
        let solve = agg.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("count").and_then(Json::as_usize), Some(5));
        assert_eq!(solve.get("errors").and_then(Json::as_usize), Some(2));
        let merged = PowHistogram::from_wire_json(solve.get("hist").unwrap()).unwrap();
        assert_eq!(merged.count(), 5);
        assert!(merged.quantile(0.99) >= 6000);
        assert!(merged.quantile(0.20) <= 64);
        // Node rows: identity for reporters, the error for the dead one.
        let rows = agg.get("nodes").and_then(Json::as_arr).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get("role").and_then(Json::as_str), Some("server"));
        assert_eq!(rows[0].get("uptime_ms").and_then(Json::as_num), Some(1234.0));
        // Recovery counters default to zero for backends that predate
        // them (absent key → 0, never a hole in the row).
        assert_eq!(
            rows[0].get("wal_records_replayed").and_then(Json::as_num),
            Some(0.0)
        );
        assert_eq!(
            rows[0].get("torn_tail_truncations").and_then(Json::as_num),
            Some(0.0)
        );
        assert_eq!(rows[1].get("ejections").and_then(Json::as_usize), Some(1));
        assert_eq!(
            rows[2].get("error").and_then(Json::as_str),
            Some("connect refused")
        );
        assert_eq!(
            rows[2].get("consecutive_failures").and_then(Json::as_usize),
            Some(7)
        );
    }

    #[test]
    fn aggregation_over_no_reporting_backends_reads_zero() {
        let agg = aggregate_cluster(&[NodeStats {
            addr: "127.0.0.1:1".to_string(),
            live: false,
            ejections: 0,
            consecutive_failures: 3,
            stats: Err("down".to_string()),
        }]);
        assert_eq!(agg.get("backends_reporting").and_then(Json::as_usize), Some(0));
        assert_eq!(agg.get("requests").and_then(Json::as_usize), Some(0));
        assert_eq!(
            agg.get("cache").unwrap().get("hit_rate").and_then(Json::as_num),
            Some(0.0)
        );
        assert_eq!(agg.get("endpoints").unwrap(), &Json::Obj(vec![]));
    }
}
