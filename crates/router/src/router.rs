//! The router daemon: front-door listener, placement, hedged fan-out,
//! and failover.
//!
//! The front door runs the exact framing loop of the backend daemon
//! ([`folearn_server::framing`]), so to any client the router *is* a
//! `folearn serve`. Behind it:
//!
//! * `register` is parsed locally, content-hashed, placed on the ring,
//!   and forwarded to each of its `R` replicas; the ack lists the
//!   backends that accepted a copy.
//! * `solve` / `evaluate` / `modelcheck` are hedged reads over the
//!   structure's live replicas: the primary fires immediately, a hedge
//!   fires at the next replica after [`RouterConfig::hedge_delay`], and
//!   the first valid reply wins (the laggard's reply is discarded when
//!   its channel receiver is gone). Transport failures walk further
//!   down the replica ladder; deterministic server-side rejections pass
//!   straight through, since every replica would reject identically.
//! * Hypothesis ids are *router-assigned*: a `solved` reply is rebound
//!   to a fresh router id and the winning backend's local id is
//!   remembered per backend. An `evaluate` landing on a replica with no
//!   binding re-solves there first — the solver is deterministic and
//!   the structure text canonical, so the re-solve reproduces the same
//!   hypothesis — which is what lets an evaluate survive the death of
//!   the backend that originally learned it.
//! * A backend that reports `unknown_structure` for a structure the
//!   router placed (i.e. it restarted and lost its registry) is
//!   re-seeded from the router's stored canonical text and the call is
//!   retried on the spot.
//! * A background anti-entropy pass (every
//!   [`RouterConfig::repair_interval`]) sweeps each backend's
//!   `inventory`, re-seeds structures a replica has lost, and
//!   replicates hypothesis bindings ahead of need — so a restarted
//!   backend is repaired before traffic finds the hole, instead of
//!   every evaluate paying a lazy re-solve.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use folearn_graph::io;
use folearn_server::client::{ClientApi, ClientConfig, ClientError, RetryPolicy, RetryingClient};
use folearn_server::framing::{self, ConnEvent, ConnLimits};
use folearn_server::proto::{
    fnv1a64, hex64, Json, Request, Response, TraceContext, WireBinding, WireProvenance,
};
use parking_lot::Mutex;

use crate::health::{run_probe_loop, Health, PROBE_PERIOD};
use crate::metrics::{aggregate_cluster, NodeStats, RouterMetrics};
use crate::ring::{HashRing, DEFAULT_VNODES};

/// Idle pooled connections kept per backend; excess checkins are
/// dropped (closing the socket).
const POOL_KEEP: usize = 8;

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Front-door listen address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend `folearn serve` addresses (at least one).
    pub backends: Vec<String>,
    /// Replicas per structure (clamped to the backend count).
    pub replicas: usize,
    /// Virtual nodes per backend on the hash ring.
    pub vnodes: usize,
    /// Fire a hedge at the next replica after this long without a
    /// reply; `None` disables hedging (reads still fail over on error).
    pub hedge_delay: Option<Duration>,
    /// Socket deadlines for backend calls. Hedging and failover only
    /// help against a *hung* backend if reads can time out, so the
    /// default sets one.
    pub client: ClientConfig,
    /// Per-backend-call retry policy (transport-level; replica failover
    /// sits above it).
    pub retry: RetryPolicy,
    /// Consecutive failures before a backend is ejected from rotation.
    pub eject_after: u32,
    /// Front-door per-connection limits (same semantics as the backend
    /// daemon's).
    pub max_requests_per_conn: usize,
    /// Longest front-door request line buffered.
    pub max_line_bytes: usize,
    /// Front-door idle timeout.
    pub idle_timeout: Duration,
    /// Concurrent front-door connections accepted.
    pub max_connections: usize,
    /// Period of the background anti-entropy pass: the router sweeps
    /// every backend's `inventory`, re-seeds structures a replica has
    /// lost, and replicates hypothesis bindings ahead of need. `None`
    /// disables the pass (repair then happens only lazily, on the
    /// request path).
    pub repair_interval: Option<Duration>,
    /// Allow per-solve trace stitching (router spans wrapping each
    /// backend's span subtree). Stitching is on demand: it runs only
    /// for solves whose request carries a trace context, so untraced
    /// traffic never pays for it. `false` is the kill switch — trace
    /// contexts are then neither propagated nor answered.
    pub trace: bool,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            backends: Vec::new(),
            replicas: 2,
            vnodes: DEFAULT_VNODES,
            hedge_delay: Some(Duration::from_millis(50)),
            client: ClientConfig::with_deadline(Duration::from_secs(30)),
            retry: RetryPolicy::backoff(2, 0x524f_5554),
            eject_after: 3,
            max_requests_per_conn: 100_000,
            max_line_bytes: 4 << 20,
            idle_timeout: Duration::from_secs(300),
            max_connections: 256,
            repair_interval: Some(Duration::from_secs(1)),
            trace: true,
        }
    }
}

struct Backend {
    addr: String,
    pool: Mutex<Vec<RetryingClient>>,
    health: Health,
}

/// Placement record for one registered structure.
#[derive(Clone)]
struct StructureEntry {
    /// Canonical graph text (`io::to_text` of the parsed graph) — kept
    /// so the router can re-seed a backend that lost its registry.
    graph_text: String,
    /// Backend indices holding a replica, primary first.
    replicas: Vec<usize>,
}

/// A router-assigned hypothesis: which structure it belongs to, the
/// solve that produced it, and the backend-local ids it is known under.
struct BoundHyp {
    structure: u64,
    /// The original solve request, replayed verbatim to rebind the
    /// hypothesis on a replica that has never seen it.
    solve: Request,
    /// backend index → that backend's local hypothesis id.
    bindings: HashMap<usize, u64>,
}

struct RouterState {
    backends: Vec<Backend>,
    ring: HashRing,
    replicas: usize,
    hedge_delay: Option<Duration>,
    client_config: ClientConfig,
    retry: RetryPolicy,
    structures: Mutex<HashMap<u64, StructureEntry>>,
    hyps: Mutex<HashMap<u64, BoundHyp>>,
    next_hyp: AtomicU64,
    /// Monotone selection counter driving the ejected-backend probe.
    selection_tick: AtomicU64,
    /// Span/trace id allocator for stitched traces.
    next_trace: AtomicU64,
    trace_enabled: bool,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
    addr: SocketAddr,
    limits: ConnLimits,
}

impl RouterState {
    /// Check a pooled connection out (or dial a fresh one).
    fn checkout(&self, bi: usize) -> Result<RetryingClient, ClientError> {
        if let Some(c) = self.backends[bi].pool.lock().pop() {
            return Ok(c);
        }
        RetryingClient::connect(
            self.backends[bi].addr.as_str(),
            self.client_config,
            self.retry.clone(),
        )
    }

    /// Return a healthy connection to the pool. Connections are only
    /// checked in after a clean exchange, so pooled ones have no stale
    /// response in flight.
    fn checkin(&self, bi: usize, client: RetryingClient) {
        let mut pool = self.backends[bi].pool.lock();
        if pool.len() < POOL_KEEP {
            pool.push(client);
        }
    }

    /// Account one backend call and update its health.
    fn note_result(&self, bi: usize, ok: bool) {
        self.metrics.record_backend_call(bi, ok);
        let health = &self.backends[bi].health;
        if ok {
            if !health.is_live() {
                self.metrics.record_recovery(bi);
            }
            health.record_ok();
        } else if health.record_failure() {
            self.metrics.record_ejection(bi);
        }
    }

    /// The failover ladder for a read: the structure's live replicas in
    /// placement order. Every [`PROBE_PERIOD`]th selection appends one
    /// ejected replica at the tail (the probe); if *no* replica is
    /// live, all of them are candidates — guessing beats refusing.
    fn candidates(&self, replicas: &[usize]) -> Vec<usize> {
        let tick = self.selection_tick.fetch_add(1, Ordering::SeqCst);
        let (live, ejected): (Vec<usize>, Vec<usize>) = replicas
            .iter()
            .copied()
            .partition(|&i| self.backends[i].health.is_live());
        if live.is_empty() {
            return replicas.to_vec();
        }
        let mut out = live;
        if let Some(&probe) = ejected.first() {
            if tick % PROBE_PERIOD == 0 {
                out.push(probe);
            }
        }
        out
    }

    fn sync_gauges(&self) {
        self.metrics
            .set_store_sizes(self.structures.lock().len(), self.hyps.lock().len());
    }

    /// A fresh span/trace id for stitched traces.
    fn next_trace_id(&self) -> u64 {
        self.next_trace.fetch_add(1, Ordering::SeqCst)
    }

    fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Poke the acceptor so a blocking accept() observes the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

/// A running router. Call [`RouterHandle::shutdown`] or
/// [`RouterHandle::wait`]; dropping the handle detaches its threads.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    acceptor: Option<JoinHandle<()>>,
    repair: Option<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl RouterHandle {
    /// The bound front-door address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the router to stop, then wait for all threads. Backends are
    /// *not* shut down — they are independent daemons.
    pub fn shutdown(mut self) {
        self.state.request_shutdown();
        self.join_all();
    }

    /// Block until a client issues a `shutdown` request, then clean up.
    pub fn wait(mut self) {
        self.join_all();
    }

    fn join_all(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // The acceptor only exits once shutdown is flagged, so the
        // repair loop is already on its way out (≤50ms poll).
        if let Some(repair) = self.repair.take() {
            let _ = repair.join();
        }
        loop {
            let handle = self.connections.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

/// Bind the front door and start routing. Returns once the listener is
/// live; backends are dialled lazily, per call.
pub fn start(config: &RouterConfig) -> std::io::Result<RouterHandle> {
    if config.backends.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "router needs at least one backend",
        ));
    }
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let state = Arc::new(RouterState {
        backends: config
            .backends
            .iter()
            .map(|a| Backend {
                addr: a.clone(),
                pool: Mutex::new(Vec::new()),
                health: Health::new(config.eject_after),
            })
            .collect(),
        ring: HashRing::new(config.backends.clone(), config.vnodes.max(1)),
        replicas: config.replicas.max(1),
        hedge_delay: config.hedge_delay,
        client_config: config.client,
        retry: config.retry.clone(),
        structures: Mutex::new(HashMap::new()),
        hyps: Mutex::new(HashMap::new()),
        next_hyp: AtomicU64::new(1),
        selection_tick: AtomicU64::new(1),
        next_trace: AtomicU64::new(1),
        trace_enabled: config.trace,
        metrics: RouterMetrics::new_with_backends(&config.backends),
        shutdown: AtomicBool::new(false),
        addr,
        limits: ConnLimits {
            max_requests_per_conn: config.max_requests_per_conn.max(1),
            max_line_bytes: config.max_line_bytes.max(1),
            idle_timeout: config.idle_timeout,
        },
    });
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let max_connections = config.max_connections.max(1);
    let acceptor = {
        let state = Arc::clone(&state);
        let connections = Arc::clone(&connections);
        std::thread::Builder::new()
            .name("folearn-router-acceptor".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if state.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(mut stream) = incoming else { continue };
                    let admitted = {
                        let mut conns = connections.lock();
                        conns.retain(|h| !h.is_finished());
                        conns.len() < max_connections
                    };
                    if !admitted {
                        state.metrics.record_rejected_connection();
                        let _ = framing::write_response(
                            &mut stream,
                            &Response::Bye {
                                reason: "connection limit".to_string(),
                            },
                        );
                        continue;
                    }
                    // Keep a reply handle: if the spawn fails (thread
                    // limit, OOM) the stream has moved into the dropped
                    // closure, and this clone lets the router degrade
                    // with an error reply instead of panicking.
                    let reply = stream.try_clone().ok();
                    let conn_state = Arc::clone(&state);
                    let spawned = std::thread::Builder::new()
                        .name("folearn-router-conn".to_string())
                        .spawn(move || serve_connection(&conn_state, stream));
                    match spawned {
                        Ok(handle) => connections.lock().push(handle),
                        Err(_) => {
                            state.metrics.record_rejected_connection();
                            if let Some(mut s) = reply {
                                let _ = framing::write_response(
                                    &mut s,
                                    &Response::error(
                                        "router overloaded: cannot spawn connection thread",
                                    ),
                                );
                            }
                        }
                    }
                }
            })?
    };

    let repair = match config.repair_interval {
        Some(interval) => {
            let state = Arc::clone(&state);
            Some(
                std::thread::Builder::new()
                    .name("folearn-router-repair".to_string())
                    .spawn(move || {
                        run_probe_loop(&state.shutdown, interval, || repair_pass(&state));
                    })?,
            )
        }
        None => None,
    };

    Ok(RouterHandle {
        addr,
        state,
        acceptor: Some(acceptor),
        repair,
        connections,
    })
}

fn serve_connection(state: &Arc<RouterState>, stream: TcpStream) {
    let wants_shutdown = framing::serve_framed(
        stream,
        &state.limits,
        &state.shutdown,
        |req| handle_request(state, req),
        |op, us, ok| state.metrics.record_request(op, us, ok),
        |_ev: ConnEvent| {},
    );
    if wants_shutdown {
        state.request_shutdown();
    }
}

fn handle_request(state: &Arc<RouterState>, req: Request) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::Shutdown => Response::Bye {
            reason: "shutdown".to_string(),
        },
        Request::Stats => {
            state.sync_gauges();
            let mut data = state.metrics.snapshot();
            // Fan the stats request out to every backend and attach the
            // merged cluster view to the router's own snapshot.
            let cluster = cluster_stats(state);
            if let Json::Obj(pairs) = &mut data {
                pairs.push(("cluster".to_string(), cluster));
            }
            Response::Stats { data }
        }
        // The router's own inventory: its placement table and
        // router-assigned hypothesis ids. Lets an operator (or an outer
        // router tier) diff the front door the same way the front door
        // diffs its backends.
        Request::Inventory => {
            let mut structures: Vec<u64> = state.structures.lock().keys().copied().collect();
            structures.sort_unstable();
            let mut hypotheses: Vec<WireBinding> = state
                .hyps
                .lock()
                .iter()
                .map(|(&id, b)| WireBinding {
                    id,
                    structure: b.structure,
                })
                .collect();
            hypotheses.sort_unstable_by_key(|b| b.id);
            Response::Inventory {
                structures,
                hypotheses,
            }
        }
        Request::Register { graph_text } => handle_register(state, &graph_text),
        req @ Request::Solve { .. } => handle_solve(state, req),
        Request::Evaluate {
            structure,
            hypothesis,
            tuples,
            labels,
        } => handle_evaluate(state, structure, hypothesis, tuples, labels),
        req @ Request::ModelCheck { .. } => handle_modelcheck(state, req),
    }
}

// ---------------------------------------------------------------------
// register: place on the ring, seed every replica
// ---------------------------------------------------------------------

fn handle_register(state: &Arc<RouterState>, graph_text: &str) -> Response {
    let g = match io::parse_graph(graph_text) {
        Ok(g) => g,
        Err(e) => return Response::error(format!("register: {e}")),
    };
    let canonical = io::to_text(&g);
    let hash = fnv1a64(canonical.as_bytes());
    let (vertices, edges) = (g.num_vertices(), g.num_edges());
    let replicas = state.ring.replicas_for(hash, state.replicas);

    let mut placed = Vec::new();
    let mut last_error = String::new();
    for &bi in &replicas {
        match register_on(state, bi, &canonical) {
            Ok(()) => {
                state.note_result(bi, true);
                placed.push(state.backends[bi].addr.clone());
            }
            Err(e) => {
                state.note_result(bi, false);
                last_error = e.to_string();
            }
        }
    }
    if placed.is_empty() {
        return Response::error_coded(
            "no_replicas",
            format!(
                "register: no replica accepted structure {}: {last_error}",
                hex64(hash)
            ),
        );
    }
    let fresh = state
        .structures
        .lock()
        .insert(
            hash,
            StructureEntry {
                graph_text: canonical,
                replicas,
            },
        )
        .is_none();
    Response::Registered {
        structure: hash,
        vertices,
        edges,
        fresh,
        replicas: Some(placed),
    }
}

fn register_on(state: &Arc<RouterState>, bi: usize, canonical: &str) -> Result<(), ClientError> {
    let mut client = state.checkout(bi)?;
    let hash = client.register(canonical)?;
    debug_assert_eq!(hash, fnv1a64(canonical.as_bytes()));
    state.checkin(bi, client);
    Ok(())
}

// ---------------------------------------------------------------------
// hedged fan-out
// ---------------------------------------------------------------------

/// The reply that won a hedged call, with enough context for
/// provenance.
struct Winner {
    response: Response,
    /// Backend index that answered.
    backend: usize,
    /// Rank in the candidate ladder (0 = primary).
    rank: usize,
    /// Whether the winning launch was a hedge.
    hedged: bool,
    /// Every launch made for this call, in launch order, for trace
    /// stitching.
    attempts: Vec<Attempt>,
}

/// One launched backend call in a hedged fan-out.
struct Attempt {
    /// Backend index the launch targeted.
    backend: usize,
    /// Rank in the candidate ladder.
    rank: usize,
    /// Why it launched: "primary", "hedge", or "failover".
    kind: &'static str,
    outcome: AttemptOutcome,
    /// Call duration, 0 while the reply is still outstanding.
    elapsed_ns: u64,
}

enum AttemptOutcome {
    Won,
    Failed(String),
    /// Launched but the call returned before its reply landed (the
    /// laggard of a hedge, or an in-flight failover).
    Discarded,
}

/// Was this failure caused by the *path* (worth trying another replica)
/// rather than by the request itself? Same classification as the
/// client's retry policy: transport errors and in-flight corruption
/// fail over; a deterministic server-side rejection would repeat
/// identically on every replica, so it passes through.
fn is_transport(e: &ClientError) -> bool {
    RetryPolicy::is_retryable(e)
}

/// Run `op` against the candidate ladder with hedging and failover.
///
/// Rank 0 launches immediately. If no reply lands within the hedge
/// delay, rank 1 launches as a *hedge*. Any transport failure launches
/// the next unlaunched rank as a *failover*. First `Ok` wins; its
/// laggards' sends fail silently once the receiver is dropped. Returns
/// the pass-through error response if a replica rejected the request
/// deterministically, or an `all replicas failed` error if the ladder
/// is exhausted.
// `Err` is the ready-to-send protocol reply; `Response` travels by value
// through every handler, and the error arm is the cold path.
#[allow(clippy::result_large_err)]
fn hedged_call<F>(state: &Arc<RouterState>, candidates: &[usize], op: F) -> Result<Winner, Response>
where
    F: Fn(&Arc<RouterState>, usize) -> Result<Response, ClientError> + Send + Sync + 'static,
{
    assert!(!candidates.is_empty(), "candidates must be non-empty");
    let op = Arc::new(op);
    let (tx, rx) = mpsc::channel::<(usize, u64, Result<Response, ClientError>)>();
    let launch = |attempts: &mut Vec<Attempt>, rank: usize, kind: &'static str| {
        let state = Arc::clone(state);
        let op = Arc::clone(&op);
        let tx = tx.clone();
        let bi = candidates[rank];
        std::thread::Builder::new()
            .name("folearn-router-call".to_string())
            .spawn(move || {
                let started = Instant::now();
                let result = op(&state, bi);
                // The receiver is gone once another replica won: the
                // laggard's answer is discarded right here.
                let _ = tx.send((rank, started.elapsed().as_nanos() as u64, result));
            })
            .expect("spawn backend call thread");
        attempts.push(Attempt {
            backend: bi,
            rank,
            kind,
            outcome: AttemptOutcome::Discarded,
            elapsed_ns: 0,
        });
    };

    let mut attempts: Vec<Attempt> = Vec::new();
    launch(&mut attempts, 0, "primary");
    let mut outstanding = 1usize;
    let mut next = 1usize;
    // Hedging applies only while the primary is silent; after the first
    // message (success or failure) further launches are failovers.
    let mut may_hedge = state.hedge_delay.is_some();
    loop {
        let msg = if may_hedge && next < candidates.len() {
            match rx.recv_timeout(state.hedge_delay.expect("checked by may_hedge")) {
                Ok(m) => m,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    state.metrics.record_hedge_fired();
                    launch(&mut attempts, next, "hedge");
                    next += 1;
                    outstanding += 1;
                    may_hedge = false;
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    unreachable!("a sender is held by this scope")
                }
            }
        } else {
            rx.recv().expect("a sender is held by this scope")
        };
        may_hedge = false;
        let (rank, elapsed_ns, result) = msg;
        let is_hedge = {
            let slot = attempts
                .iter_mut()
                .find(|a| a.rank == rank)
                .expect("reply from a launched rank");
            slot.elapsed_ns = elapsed_ns;
            slot.kind == "hedge"
        };
        match result {
            Ok(response) => {
                if let Some(slot) = attempts.iter_mut().find(|a| a.rank == rank) {
                    slot.outcome = AttemptOutcome::Won;
                }
                state.note_result(candidates[rank], true);
                if is_hedge {
                    state.metrics.record_hedge_won();
                }
                return Ok(Winner {
                    response,
                    backend: candidates[rank],
                    rank,
                    hedged: is_hedge,
                    attempts,
                });
            }
            Err(e) => {
                if let Some(slot) = attempts.iter_mut().find(|a| a.rank == rank) {
                    slot.outcome = AttemptOutcome::Failed(e.to_string());
                }
                state.note_result(candidates[rank], false);
                outstanding -= 1;
                if !is_transport(&e) {
                    // Deterministic rejection: every replica would say
                    // the same, so say it now.
                    return Err(match e {
                        ClientError::Server { message, code } => Response::Error { message, code },
                        other => Response::error(other.to_string()),
                    });
                }
                if next < candidates.len() {
                    state.metrics.record_replica_retry();
                    launch(&mut attempts, next, "failover");
                    next += 1;
                    outstanding += 1;
                } else if outstanding == 0 {
                    return Err(Response::error(format!("all replicas failed: {e}")));
                }
            }
        }
    }
}

fn provenance(state: &Arc<RouterState>, w: &Winner) -> WireProvenance {
    WireProvenance {
        backend: state.backends[w.backend].addr.clone(),
        replica: w.rank,
        hedged: w.hedged,
    }
}

// ---------------------------------------------------------------------
// reads: solve / evaluate / modelcheck
// ---------------------------------------------------------------------

/// Look up a structure's placement, or the coded error a client can
/// react to.
#[allow(clippy::result_large_err)]
fn placement(state: &Arc<RouterState>, structure: u64, op: &str) -> Result<StructureEntry, Response> {
    state.structures.lock().get(&structure).cloned().ok_or_else(|| {
        Response::error_coded(
            "unknown_structure",
            format!("{op}: unknown structure {}", hex64(structure)),
        )
    })
}

/// Retry provenance gathered during a routed call — (backend index,
/// span name) per re-seed or rebind — shared with the per-attempt call
/// threads so trace stitching can show the recovery work.
type EventLog = Arc<Mutex<Vec<(usize, &'static str)>>>;

/// One backend exchange, re-seeding the backend's registry if it
/// restarted and forgot a structure the router placed on it.
fn call_with_reseed(
    state: &Arc<RouterState>,
    bi: usize,
    req: &Request,
    graph_text: &str,
    events: &EventLog,
) -> Result<Response, ClientError> {
    let mut client = state.checkout(bi)?;
    let mut resp = client.call(req);
    if is_unknown_structure(&resp) {
        events.lock().push((bi, "router.reseed"));
        client.register(graph_text)?;
        resp = client.call(req);
    }
    let resp = resp?;
    state.checkin(bi, client);
    Ok(resp)
}

fn is_unknown_structure(r: &Result<Response, ClientError>) -> bool {
    matches!(
        r,
        Err(ClientError::Server {
            code: Some(c),
            ..
        }) if c == "unknown_structure"
    )
}

fn is_stale_binding(r: &Result<Response, ClientError>) -> bool {
    matches!(
        r,
        Err(ClientError::Server {
            code: Some(c),
            ..
        }) if c == "unknown_structure" || c == "unknown_hypothesis"
    )
}

fn handle_solve(state: &Arc<RouterState>, req: Request) -> Response {
    let (structure, client_trace) = match &req {
        Request::Solve {
            structure, trace, ..
        } => (*structure, *trace),
        _ => unreachable!("handle_solve is dispatched on Request::Solve"),
    };
    let entry = match placement(state, structure, "solve") {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let candidates = state.candidates(&entry.replicas);
    // Trace on demand: the caller opts in per solve by sending a trace
    // context (the sampling decision belongs to the edge); the config
    // flag is a kill switch. Only opted-in solves propagate the
    // identity downstream and pay for stitching — untraced traffic
    // through a trace-enabled router behaves exactly like `trace off`.
    let want_trace = state.trace_enabled && client_trace.is_some();
    let trace_id = client_trace.map_or_else(|| state.next_trace_id(), |c| c.trace_id);
    let span_id = state.next_trace_id();
    let mut fwd = req.clone();
    if let Request::Solve { trace, .. } = &mut fwd {
        *trace = want_trace.then_some(TraceContext {
            trace_id,
            parent: span_id,
        });
    }
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let events_for_op = Arc::clone(&events);
    let graph_text = entry.graph_text.clone();
    let started = Instant::now();
    let winner = hedged_call(state, &candidates, move |state, bi| {
        call_with_reseed(state, bi, &fwd, &graph_text, &events_for_op)
    });
    match winner {
        Ok(w) => {
            let prov = provenance(state, &w);
            let Winner {
                response,
                attempts,
                backend,
                ..
            } = w;
            match response {
                Response::Solved(mut outcome) => {
                    state.metrics.record_cache_event(outcome.cached);
                    let backend_id = outcome.hypothesis.id;
                    let router_id = state.next_hyp.fetch_add(1, Ordering::SeqCst);
                    // The stored replay request carries no trace context:
                    // a later rebind is its own story, not this solve's.
                    let mut solve_for_bind = req;
                    if let Request::Solve { trace, .. } = &mut solve_for_bind {
                        *trace = None;
                    }
                    state.hyps.lock().insert(
                        router_id,
                        BoundHyp {
                            structure,
                            solve: solve_for_bind,
                            bindings: HashMap::from([(backend, backend_id)]),
                        },
                    );
                    outcome.hypothesis.id = router_id;
                    if want_trace {
                        let backend_trace = outcome.trace.take();
                        outcome.trace = Some(stitch_trace(
                            state,
                            trace_id,
                            span_id,
                            client_trace,
                            structure,
                            &attempts,
                            backend_trace,
                            &events.lock(),
                            started.elapsed(),
                        ));
                    }
                    outcome.provenance = Some(prov);
                    Response::Solved(outcome)
                }
                other => other,
            }
        }
        Err(resp) => resp,
    }
}

/// Build the router's stitched span tree for one solve: a
/// `router.solve` root whose children are every launched attempt (the
/// winner carrying the backend's own span subtree) plus any re-seed /
/// rebind retries, each tagged with provenance meta. Provenance rides
/// in `meta` only — `span_from_json` rejects unknown counter names, so
/// the stitched tree must stay parseable by the standard importer.
///
/// The tree is assembled directly in the `span_to_json` wire shape: the
/// backend's subtree (already in that shape, the daemon exported it) is
/// spliced in verbatim, so stitching costs O(router spans) instead of
/// parsing and re-rendering the whole backend trace on every solve.
#[allow(clippy::too_many_arguments)]
fn stitch_trace(
    state: &Arc<RouterState>,
    trace_id: u64,
    span_id: u64,
    client_trace: Option<TraceContext>,
    structure: u64,
    attempts: &[Attempt],
    backend_trace: Option<Json>,
    events: &[(usize, &'static str)],
    elapsed: Duration,
) -> Json {
    let mut root_meta = vec![
        ("trace_id".to_string(), Json::str(hex64(trace_id))),
        ("span_id".to_string(), Json::str(hex64(span_id))),
    ];
    if let Some(c) = client_trace {
        root_meta.push(("parent".to_string(), Json::str(hex64(c.parent))));
    }
    root_meta.push(("structure".to_string(), Json::str(hex64(structure))));
    let mut backend_trace = backend_trace;
    let mut children = Vec::with_capacity(attempts.len() + events.len());
    for a in attempts {
        let mut meta = vec![
            (
                "backend".to_string(),
                Json::str(state.backends[a.backend].addr.clone()),
            ),
            ("rank".to_string(), Json::int(a.rank)),
            ("kind".to_string(), Json::str(a.kind)),
        ];
        let outcome = match &a.outcome {
            AttemptOutcome::Won => "won".to_string(),
            AttemptOutcome::Failed(e) => format!("failed: {e}"),
            AttemptOutcome::Discarded => "discarded".to_string(),
        };
        meta.push(("outcome".to_string(), Json::str(outcome)));
        let mut sub = Vec::new();
        if matches!(a.outcome, AttemptOutcome::Won) {
            if let Some(t) = backend_trace.take() {
                // Splice a span-shaped subtree verbatim; anything else
                // still rides along as meta.
                if t.get("span").and_then(Json::as_str).is_some()
                    && t.get("ns").and_then(Json::as_num).is_some()
                {
                    sub.push(t);
                } else {
                    meta.push(("backend_trace".to_string(), t));
                }
            }
        }
        let mut pairs = vec![
            ("span".to_string(), Json::str("router.attempt")),
            ("ns".to_string(), Json::Num(a.elapsed_ns as f64)),
            ("meta".to_string(), Json::Obj(meta)),
        ];
        if !sub.is_empty() {
            pairs.push(("children".to_string(), Json::Arr(sub)));
        }
        children.push(Json::Obj(pairs));
    }
    for &(bi, name) in events {
        children.push(Json::Obj(vec![
            ("span".to_string(), Json::str(name)),
            ("ns".to_string(), Json::Num(0.0)),
            (
                "meta".to_string(),
                Json::Obj(vec![(
                    "backend".to_string(),
                    Json::str(state.backends[bi].addr.clone()),
                )]),
            ),
        ]));
    }
    let mut pairs = vec![
        ("span".to_string(), Json::str("router.solve")),
        ("ns".to_string(), Json::Num(elapsed.as_nanos() as f64)),
        ("meta".to_string(), Json::Obj(root_meta)),
    ];
    if !children.is_empty() {
        pairs.push(("children".to_string(), Json::Arr(children)));
    }
    Json::Obj(pairs)
}

/// Fan `stats` out to every backend and merge the snapshots into the
/// cluster view ([`aggregate_cluster`]). An unreachable backend
/// contributes an error row (and a health strike) instead of numbers.
fn cluster_stats(state: &Arc<RouterState>) -> Json {
    let nodes: Vec<NodeStats> = state
        .backends
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let stats = state.checkout(bi).and_then(|mut client| {
                let snap = client.stats()?;
                state.checkin(bi, client);
                Ok(snap)
            });
            state.note_result(bi, stats.is_ok());
            NodeStats {
                addr: b.addr.clone(),
                live: b.health.is_live(),
                ejections: b.health.ejections(),
                consecutive_failures: b.health.consecutive_failures(),
                stats: stats.map_err(|e| e.to_string()),
            }
        })
        .collect();
    aggregate_cluster(&nodes)
}

fn handle_modelcheck(state: &Arc<RouterState>, req: Request) -> Response {
    let Request::ModelCheck { structure, .. } = &req else {
        unreachable!("handle_modelcheck is dispatched on Request::ModelCheck")
    };
    let entry = match placement(state, *structure, "modelcheck") {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let candidates = state.candidates(&entry.replicas);
    let graph_text = entry.graph_text.clone();
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let winner = hedged_call(state, &candidates, move |state, bi| {
        call_with_reseed(state, bi, &req, &graph_text, &events)
    });
    match winner {
        Ok(w) => {
            let prov = provenance(state, &w);
            match w.response {
                Response::Truth { holds, .. } => Response::Truth {
                    holds,
                    provenance: Some(prov),
                },
                other => other,
            }
        }
        Err(resp) => resp,
    }
}

fn handle_evaluate(
    state: &Arc<RouterState>,
    structure: u64,
    hypothesis: u64,
    tuples: Vec<Vec<u32>>,
    labels: Option<Vec<bool>>,
) -> Response {
    let bound = {
        let hyps = state.hyps.lock();
        hyps.get(&hypothesis).map(|b| (b.structure, b.solve.clone()))
    };
    let Some((h_structure, solve_req)) = bound else {
        return Response::error_coded(
            "unknown_hypothesis",
            format!("evaluate: unknown hypothesis {}", hex64(hypothesis)),
        );
    };
    if h_structure != structure {
        return Response::error("evaluate: hypothesis was learned on a different structure");
    }
    let entry = match placement(state, structure, "evaluate") {
        Ok(e) => e,
        Err(resp) => return resp,
    };
    let candidates = state.candidates(&entry.replicas);
    let graph_text = entry.graph_text.clone();
    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    let winner = hedged_call(state, &candidates, move |state, bi| {
        evaluate_on(
            state, bi, hypothesis, structure, &solve_req, &graph_text, &tuples, &labels, &events,
        )
    });
    match winner {
        Ok(w) => {
            let prov = provenance(state, &w);
            match w.response {
                Response::Predictions { labels, error, .. } => Response::Predictions {
                    labels,
                    error,
                    provenance: Some(prov),
                },
                other => other,
            }
        }
        Err(resp) => resp,
    }
}

/// Evaluate a router hypothesis on one backend, creating the
/// backend-local binding first if this replica has never solved it.
#[allow(clippy::too_many_arguments)]
fn evaluate_on(
    state: &Arc<RouterState>,
    bi: usize,
    router_id: u64,
    structure: u64,
    solve_req: &Request,
    graph_text: &str,
    tuples: &[Vec<u32>],
    labels: &Option<Vec<bool>>,
    events: &EventLog,
) -> Result<Response, ClientError> {
    let mut client = state.checkout(bi)?;
    let binding = {
        let hyps = state.hyps.lock();
        hyps.get(&router_id).and_then(|b| b.bindings.get(&bi).copied())
    };
    let backend_hyp = match binding {
        Some(id) => id,
        None => rebind(state, &mut client, bi, router_id, solve_req, graph_text, events)?,
    };
    let eval = |hyp: u64| Request::Evaluate {
        structure,
        hypothesis: hyp,
        tuples: tuples.to_vec(),
        labels: labels.clone(),
    };
    let mut resp = client.call(&eval(backend_hyp));
    if is_stale_binding(&resp) {
        // The backend restarted between binding and call: re-seed the
        // structure, re-solve, and retry with the fresh id.
        let fresh = rebind(state, &mut client, bi, router_id, solve_req, graph_text, events)?;
        resp = client.call(&eval(fresh));
    }
    let resp = resp?;
    state.checkin(bi, client);
    Ok(resp)
}

/// Replay the original solve on backend `bi` to obtain a local id for a
/// router hypothesis. Deterministic solver + canonical structure text
/// mean the replay reproduces the original hypothesis exactly (and the
/// backend's result cache makes repeats cheap).
#[allow(clippy::too_many_arguments)]
fn rebind(
    state: &Arc<RouterState>,
    client: &mut RetryingClient,
    bi: usize,
    router_id: u64,
    solve_req: &Request,
    graph_text: &str,
    events: &EventLog,
) -> Result<u64, ClientError> {
    events.lock().push((bi, "router.rebind"));
    let mut resp = client.call(solve_req);
    if is_unknown_structure(&resp) {
        events.lock().push((bi, "router.reseed"));
        client.register(graph_text)?;
        resp = client.call(solve_req);
    }
    match resp? {
        Response::Solved(outcome) => {
            let id = outcome.hypothesis.id;
            if let Some(b) = state.hyps.lock().get_mut(&router_id) {
                b.bindings.insert(bi, id);
            }
            Ok(id)
        }
        other => Err(ClientError::Unexpected(format!(
            "wanted `solved` while rebinding, got `{}`",
            other.encode()
        ))),
    }
}

// ---------------------------------------------------------------------
// anti-entropy: inventory diff and repair
// ---------------------------------------------------------------------

/// One anti-entropy sweep over every backend: fetch its `inventory`,
/// diff it against the router's placement tables, and close the gap.
///
/// * A structure placed on the backend but missing from its inventory
///   (it restarted without durable state) is re-seeded from the stored
///   canonical text — counted as `repairs_performed`.
/// * A hypothesis whose structure is placed on the backend but which is
///   unbound there — or bound to a local id the backend no longer
///   knows — is re-solved proactively, counted as `rebinds_avoided`:
///   each binding replicated here is one lazy evaluate-time re-solve
///   that will now never happen.
///
/// The sweep doubles as an active health probe: transport failures
/// strike the backend's health, and a successful exchange restores an
/// ejected backend without waiting for client traffic. A backend too
/// old to speak `inventory` answers with a server-side error; it is
/// skipped without a strike — alive, just not repairable.
fn repair_pass(state: &Arc<RouterState>) {
    // Snapshot the tables outside any backend I/O so a slow backend
    // never holds the request path's locks.
    let structures: Vec<(u64, StructureEntry)> = state
        .structures
        .lock()
        .iter()
        .map(|(&h, e)| (h, e.clone()))
        .collect();
    let hyps: Vec<(u64, u64, Request)> = state
        .hyps
        .lock()
        .iter()
        .map(|(&id, b)| (id, b.structure, b.solve.clone()))
        .collect();
    for bi in 0..state.backends.len() {
        repair_backend(state, bi, &structures, &hyps);
    }
}

/// Diff-and-repair one backend; see [`repair_pass`]. Stops at the first
/// transport failure — the connection's state is unknown past it, and
/// the next sweep picks up where this one left off.
fn repair_backend(
    state: &Arc<RouterState>,
    bi: usize,
    structures: &[(u64, StructureEntry)],
    hyps: &[(u64, u64, Request)],
) {
    let mut client = match state.checkout(bi) {
        Ok(c) => c,
        Err(_) => {
            state.note_result(bi, false);
            return;
        }
    };
    let (have_structures, have_hyps) = match client.inventory() {
        Ok(inv) => inv,
        Err(ClientError::Server { .. }) => {
            // Pre-inventory backend: a clean protocol exchange, so it
            // is alive — no strike, nothing to diff.
            state.note_result(bi, true);
            state.checkin(bi, client);
            return;
        }
        Err(_) => {
            state.note_result(bi, false);
            return;
        }
    };
    state.note_result(bi, true);
    let have_structures: HashSet<u64> = have_structures.into_iter().collect();
    let have_ids: HashSet<u64> = have_hyps.iter().map(|b| b.id).collect();

    for (hash, entry) in structures {
        if !entry.replicas.contains(&bi) || have_structures.contains(hash) {
            continue;
        }
        match client.register(&entry.graph_text) {
            Ok(_) => {
                state.metrics.record_repair();
                state.note_result(bi, true);
            }
            Err(e) => {
                state.note_result(bi, !is_transport(&e));
                return;
            }
        }
    }

    let events: EventLog = Arc::new(Mutex::new(Vec::new()));
    for (router_id, structure, solve_req) in hyps {
        let Some(entry) = structures
            .iter()
            .find(|(h, _)| h == structure)
            .map(|(_, e)| e)
        else {
            continue;
        };
        if !entry.replicas.contains(&bi) {
            continue;
        }
        let bound = {
            let tables = state.hyps.lock();
            tables
                .get(router_id)
                .and_then(|b| b.bindings.get(&bi).copied())
        };
        // A binding to a local id the backend still knows is healthy —
        // notably a durable backend that replayed its WAL keeps its
        // ids, so its bindings survive a restart untouched.
        if bound.is_some_and(|id| have_ids.contains(&id)) {
            continue;
        }
        match rebind(
            state,
            &mut client,
            bi,
            *router_id,
            solve_req,
            &entry.graph_text,
            &events,
        ) {
            Ok(_) => {
                state.metrics.record_rebind_avoided();
                state.note_result(bi, true);
            }
            Err(e) => {
                state.note_result(bi, !is_transport(&e));
                return;
            }
        }
    }
    state.checkin(bi, client);
}
