//! Consistent hashing: a ring of virtual nodes over the backend set.
//!
//! Each backend contributes `vnodes` points at
//! `fnv1a64("{addr}#{i}")`; a key (a structure's content hash) is
//! owned by the first point clockwise from it, and its `R` replicas
//! are the first `R` *distinct* backends on that walk. Virtual nodes
//! smooth the load split, and the classical consistent-hashing
//! property holds: adding or removing one backend of `N` reassigns
//! only about `1/N` of the keys, because only the arcs adjacent to the
//! changed backend's points change owner.

use folearn_server::proto::fnv1a64;

/// splitmix64 finalizer. FNV-1a over near-identical strings
/// (`addr#0`, `addr#1`, …) leaves the high bits correlated, which
/// clusters virtual-node points and skews the load split; one round of
/// avalanche mixing spreads them uniformly around the ring.
fn mix64(mut z: u64) -> u64 {
    z ^= z >> 30;
    z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    z
}

/// A consistent-hash ring over named backends.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(point, backend index)` sorted by point.
    points: Vec<(u64, usize)>,
    backends: Vec<String>,
    vnodes: usize,
}

/// Default virtual nodes per backend: enough to split load within a
/// few percent on small clusters without bloating lookup.
pub const DEFAULT_VNODES: usize = 64;

impl HashRing {
    /// Build a ring over `backends` with `vnodes` points each.
    ///
    /// # Panics
    /// Panics if `backends` is empty or `vnodes` is zero.
    pub fn new<S: Into<String>>(backends: impl IntoIterator<Item = S>, vnodes: usize) -> Self {
        let backends: Vec<String> = backends.into_iter().map(Into::into).collect();
        assert!(!backends.is_empty(), "hash ring needs at least one backend");
        assert!(vnodes > 0, "hash ring needs at least one virtual node");
        let mut ring = Self {
            points: Vec::new(),
            backends: Vec::new(),
            vnodes,
        };
        for b in backends {
            ring.insert_backend(b);
        }
        ring
    }

    fn insert_backend(&mut self, backend: String) {
        let idx = self.backends.len();
        for v in 0..self.vnodes {
            let point = mix64(fnv1a64(format!("{backend}#{v}").as_bytes()));
            self.points.push((point, idx));
        }
        self.backends.push(backend);
        // Sort by point; ties (astronomically unlikely with 64-bit FNV)
        // break by backend index so the ring stays deterministic.
        self.points.sort_unstable();
    }

    /// Add a backend after construction (used by rebalancing tests; the
    /// running router builds its ring once).
    pub fn add(&mut self, backend: impl Into<String>) {
        self.insert_backend(backend.into());
    }

    /// Remove a backend by address. Keys it owned fall through to the
    /// next point clockwise; everything else keeps its owner.
    pub fn remove(&mut self, backend: &str) {
        let Some(gone) = self.backends.iter().position(|b| b == backend) else {
            return;
        };
        self.points.retain(|&(_, i)| i != gone);
        self.backends.remove(gone);
        // Close the index gap left by the removal.
        for p in &mut self.points {
            if p.1 > gone {
                p.1 -= 1;
            }
        }
    }

    /// The backend addresses, in insertion order.
    pub fn backends(&self) -> &[String] {
        &self.backends
    }

    /// The first `r` *distinct* backends clockwise from `key`, as
    /// indices into [`HashRing::backends`]. Fewer than `r` come back
    /// only when the ring has fewer than `r` backends. Index 0 of the
    /// result is the key's primary.
    pub fn replicas_for(&self, key: u64, r: usize) -> Vec<usize> {
        let want = r.min(self.backends.len());
        let mut out = Vec::with_capacity(want);
        if want == 0 {
            return out;
        }
        // Mix the key for the same reason the points are mixed: content
        // hashes of similar structures are correlated, and placement
        // should not inherit that correlation.
        let key = mix64(key);
        let start = self.points.partition_point(|&(p, _)| p < key);
        for step in 0..self.points.len() {
            let (_, idx) = self.points[(start + step) % self.points.len()];
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// The primary backend index for `key`.
    pub fn primary_for(&self, key: u64) -> usize {
        self.replicas_for(key, 1)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:7071")).collect()
    }

    fn keys(n: u64) -> Vec<u64> {
        // Spread keys the way real structure hashes spread: hash them.
        (0..n)
            .map(|i| fnv1a64(format!("structure-{i}").as_bytes()))
            .collect()
    }

    #[test]
    fn replicas_are_distinct_and_primary_first() {
        let ring = HashRing::new(addrs(5), DEFAULT_VNODES);
        for &k in &keys(200) {
            let reps = ring.replicas_for(k, 3);
            assert_eq!(reps.len(), 3);
            let mut sorted = reps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct backends");
            assert_eq!(reps[0], ring.primary_for(k));
        }
    }

    #[test]
    fn short_rings_cap_the_replica_count() {
        let ring = HashRing::new(addrs(2), DEFAULT_VNODES);
        assert_eq!(ring.replicas_for(42, 3).len(), 2);
    }

    #[test]
    fn load_split_is_roughly_even() {
        let ring = HashRing::new(addrs(4), DEFAULT_VNODES);
        let ks = keys(4000);
        let mut counts = [0usize; 4];
        for &k in &ks {
            counts[ring.primary_for(k)] += 1;
        }
        for &c in &counts {
            // Perfect split is 1000; virtual nodes keep every backend
            // within a loose factor-of-two band.
            assert!((500..=2000).contains(&c), "skewed split: {counts:?}");
        }
    }

    /// The headline consistency property: removing one of `N` backends
    /// only moves the keys that backend owned — every other key keeps
    /// its primary. Adding it back restores the original assignment
    /// exactly, and a *fresh* backend claims only ~1/N of the keys.
    #[test]
    fn ring_is_stable_under_backend_add_and_remove() {
        let n = 4usize;
        let ks = keys(2000);
        let ring = HashRing::new(addrs(n), DEFAULT_VNODES);
        let before: Vec<String> =
            ks.iter().map(|&k| ring.backends()[ring.primary_for(k)].clone()).collect();

        // Remove backend 2: only its keys move.
        let mut smaller = ring.clone();
        let victim = ring.backends()[2].clone();
        smaller.remove(&victim);
        let mut moved = 0usize;
        for (i, &k) in ks.iter().enumerate() {
            let now = &smaller.backends()[smaller.primary_for(k)];
            if before[i] == victim {
                assert_ne!(now, &victim);
            } else {
                assert_eq!(now, &before[i], "key {k:#x} moved although its owner stayed");
            }
            if *now != before[i] {
                moved += 1;
            }
        }
        let expected = ks.len() / n;
        assert!(
            moved <= expected * 2,
            "removal moved {moved} of {} keys (expected ~{expected})",
            ks.len()
        );

        // Add it back: bit-identical to the original ring.
        let mut restored = smaller.clone();
        restored.add(victim.clone());
        for (i, &k) in ks.iter().enumerate() {
            // Indices may differ (insertion order changed) but the
            // owning *address* is what placement means.
            let a = &restored.backends()[restored.primary_for(k)];
            // The restored ring hashes the same points, so ownership is
            // the original ownership.
            assert_eq!(a, &before[i]);
        }

        // A brand-new 5th backend claims only ~1/5 of the keys.
        let mut bigger = ring.clone();
        bigger.add("10.0.9.9:7071");
        let mut claimed = 0usize;
        for (i, &k) in ks.iter().enumerate() {
            let now = &bigger.backends()[bigger.primary_for(k)];
            if now != &before[i] {
                assert_eq!(now, "10.0.9.9:7071", "a grown ring only moves keys to the newcomer");
                claimed += 1;
            }
        }
        let expected = ks.len() / (n + 1);
        assert!(
            claimed >= expected / 2 && claimed <= expected * 2,
            "newcomer claimed {claimed} of {} keys (expected ~{expected})",
            ks.len()
        );
    }

    #[test]
    fn removal_of_unknown_backend_is_a_no_op() {
        let mut ring = HashRing::new(addrs(3), 8);
        let before = ring.clone();
        ring.remove("203.0.113.1:1");
        for &k in &keys(100) {
            assert_eq!(ring.primary_for(k), before.primary_for(k));
        }
    }
}
