//! Local types `ltp_{q,r}` and the Gaifman radius of Fact 5.

use folearn_graph::{bfs, ops, Graph, V};

use crate::arena::{TypeArena, TypeId};
use crate::compute::TypeComputer;

/// The locality radius `r(q)` from the paper's Fact 5: if two tuples *of
/// the same graph* have equal local `(q, r(q))`-types then they have equal
/// `q`-types.
///
/// We use `r(q) = 4^q` (`r(0) = 1, r(1) = 4, r(2) = 16, …`), which is in
/// `2^{O(q)}` as Fact 5 requires and independent of the vocabulary. Note
/// that small radii genuinely fail: at `q = 1, r ≤ 2` there is a 4-vertex
/// counterexample (`u—y, v—y, v—x` with `x, y` red: `u` has a non-adjacent
/// red vertex, `v` does not, yet their radius-2 local types agree), so the
/// exponential bound is not an artefact — the adversarial property test
/// `gaifman_locality_fact5` probes this choice.
pub fn gaifman_radius(q: usize) -> usize {
    4usize.saturating_pow(q as u32)
}

/// The local type `ltp_{q,r}(G, v̄) = tp_q(𝒩_r^G(v̄), v̄)`: the `q`-type of
/// the tuple *within its induced `r`-neighbourhood graph*.
///
/// Local types of different tuples/graphs are comparable through the
/// shared arena; on sparse graphs their computation touches only the ball,
/// which is what makes the Theorem 13 learner fixed-parameter tractable.
pub fn local_type(g: &Graph, arena: &mut TypeArena, tuple: &[V], q: usize, r: usize) -> TypeId {
    counting_local_type(g, arena, tuple, q, r, 1)
}

/// The counting variant of [`local_type`]: `ltp` over FO+C types with the
/// given counting cap (cap 1 = classical).
pub fn counting_local_type(
    g: &Graph,
    arena: &mut TypeArena,
    tuple: &[V],
    q: usize,
    r: usize,
    cap: u32,
) -> TypeId {
    let ball = bfs::ball(g, tuple, r);
    let sub = ops::induced_subgraph(g, &ball);
    let mapped = sub
        .map_tuple(tuple)
        .expect("tuple entries lie in their own ball");
    TypeComputer::with_cap(&sub.graph, arena, cap).type_of(&mapped, q)
}

/// Compute local types for many tuples at once, reusing ball extraction
/// for identical tuples; returns one `TypeId` per input tuple.
pub fn local_types(
    g: &Graph,
    arena: &mut TypeArena,
    tuples: &[Vec<V>],
    q: usize,
    r: usize,
) -> Vec<TypeId> {
    let mut cache: std::collections::HashMap<&[V], TypeId> = std::collections::HashMap::new();
    let mut out = Vec::with_capacity(tuples.len());
    for t in tuples {
        let id = match cache.get(t.as_slice()) {
            Some(&id) => id,
            None => {
                let id = local_type(g, arena, t, q, r);
                cache.insert(t.as_slice(), id);
                id
            }
        };
        out.push(id);
    }
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::compute::type_of;

    use super::*;

    #[test]
    fn radius_values() {
        assert_eq!(gaifman_radius(0), 1);
        assert_eq!(gaifman_radius(1), 4);
        assert_eq!(gaifman_radius(2), 16);
        assert_eq!(gaifman_radius(3), 64);
    }

    #[test]
    fn local_type_ignores_far_structure() {
        // A red vertex far away does not affect the (1,1)-local type.
        let vocab = Vocabulary::new(["Red"]);
        let plain = generators::path(9, vocab.clone());
        let colored = generators::periodically_colored(&plain, ColorId(0), 8); // V(0), V(8)
        let mut arena = TypeArena::new(Arc::clone(colored.vocab()));
        let here = local_type(&colored, &mut arena, &[V(4)], 1, 1);
        let plain_padded = folearn_graph::ops::pad_vocabulary(&plain, colored.vocab());
        let there = local_type(&plain_padded, &mut arena, &[V(4)], 1, 1);
        assert_eq!(here, there);
        // But the *global* 1-type differs: the colours are visible.
        let a = type_of(&colored, &mut arena, &[V(4)], 1);
        let b = type_of(&plain_padded, &mut arena, &[V(4)], 1);
        assert_ne!(a, b);
    }

    #[test]
    fn gaifman_fact5_on_small_paths() {
        // Fact 5: equal ltp_{q, r(q)} implies equal tp_q. Exhaustive check
        // for q = 1 on a coloured path.
        let vocab = Vocabulary::new(["Red"]);
        let base = generators::path(8, vocab);
        let g = generators::periodically_colored(&base, ColorId(0), 3);
        let q = 1;
        let r = gaifman_radius(q);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let verts: Vec<V> = g.vertices().collect();
        for &u in &verts {
            for &v in &verts {
                let lu = local_type(&g, &mut arena, &[u], q, r);
                let lv = local_type(&g, &mut arena, &[v], q, r);
                if lu == lv {
                    let tu = type_of(&g, &mut arena, &[u], q);
                    let tv = type_of(&g, &mut arena, &[v], q);
                    assert_eq!(tu, tv, "Fact 5 violated at {u},{v}");
                }
            }
        }
    }

    #[test]
    fn small_radius_breaks_locality() {
        // With r = 0 the local type sees only the vertex itself, so path
        // endpoints and midpoints collapse even though tp_2 differs —
        // i.e. r below the Gaifman radius invalidates Fact 5.
        let g = generators::path(5, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let end = local_type(&g, &mut arena, &[V(0)], 2, 0);
        let mid = local_type(&g, &mut arena, &[V(2)], 2, 0);
        assert_eq!(end, mid);
        assert_ne!(
            type_of(&g, &mut arena, &[V(0)], 2),
            type_of(&g, &mut arena, &[V(2)], 2)
        );
    }

    #[test]
    fn batch_matches_single() {
        let g = generators::path(6, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let tuples: Vec<Vec<V>> = vec![vec![V(0)], vec![V(3)], vec![V(0)]];
        let batch = local_types(&g, &mut arena, &tuples, 1, 1);
        assert_eq!(batch[0], batch[2]);
        assert_eq!(batch[0], local_type(&g, &mut arena, &[V(0)], 1, 1));
        assert_eq!(batch[1], local_type(&g, &mut arena, &[V(3)], 1, 1));
    }
}
