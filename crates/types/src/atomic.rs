//! Atomic (quantifier-free) types of tuples.

use folearn_graph::{Graph, V};

/// The atomic type of a `k`-tuple `v̄`: everything a quantifier-free
/// formula can say about it — the equality pattern, the adjacency pattern,
/// and the colours of each entry.
///
/// Atomic types are canonical: two tuples (possibly in different graphs
/// over the same vocabulary) have equal `AtomicType`s iff they satisfy the
/// same quantifier-free formulas.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AtomicType {
    /// Tuple arity.
    pub k: u16,
    /// Equality partition in canonical form: `eq[i]` is the smallest index
    /// `j` with `v_j = v_i`.
    pub eq: Vec<u16>,
    /// Adjacency bits, row-major over pairs `i < j`: bit `p(i,j)` set iff
    /// `E(v_i, v_j)`.
    pub adj: Vec<u64>,
    /// Colour bitsets of the entries, concatenated: entry `i` occupies
    /// words `[i·w, (i+1)·w)` where `w` is the vocabulary's
    /// words-per-vertex.
    pub colors: Vec<u64>,
}

#[inline]
fn pair_index(i: usize, j: usize) -> usize {
    debug_assert!(i < j);
    j * (j - 1) / 2 + i
}

impl AtomicType {
    /// Compute the atomic type of `tuple` in `g`.
    pub fn of(g: &Graph, tuple: &[V]) -> Self {
        let k = tuple.len();
        let mut eq = Vec::with_capacity(k);
        for (i, &vi) in tuple.iter().enumerate() {
            let first = tuple[..i]
                .iter()
                .position(|&vj| vj == vi)
                .unwrap_or(i);
            eq.push(first as u16);
        }
        let pairs = k * k.saturating_sub(1) / 2;
        let mut adj = vec![0u64; pairs.div_ceil(64).max(1)];
        for j in 1..k {
            for i in 0..j {
                if g.has_edge(tuple[i], tuple[j]) {
                    let p = pair_index(i, j);
                    adj[p / 64] |= 1u64 << (p % 64);
                }
            }
        }
        let w = g.words_per_vertex();
        let mut colors = Vec::with_capacity(k * w);
        for &v in tuple {
            colors.extend_from_slice(g.color_words(v));
        }
        Self {
            k: k as u16,
            eq,
            adj,
            colors,
        }
    }

    /// Whether entries `i` and `j` are equal.
    #[inline]
    pub fn entries_equal(&self, i: usize, j: usize) -> bool {
        self.eq[i] == self.eq[j]
    }

    /// Whether entries `i` and `j` are adjacent.
    #[inline]
    pub fn entries_adjacent(&self, i: usize, j: usize) -> bool {
        if i == j {
            return false;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let p = pair_index(a, b);
        self.adj[p / 64] >> (p % 64) & 1 == 1
    }

    /// Whether entry `i` has colour index `c` (given the words-per-vertex
    /// stride `w` the type was built with).
    #[inline]
    pub fn entry_has_color(&self, i: usize, c: usize, w: usize) -> bool {
        self.colors[i * w + c / 64] >> (c % 64) & 1 == 1
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use super::*;

    fn colored_path() -> Graph {
        let g = generators::path(5, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), 2)
    }

    #[test]
    fn equality_pattern_is_canonical() {
        let g = colored_path();
        let t = AtomicType::of(&g, &[V(1), V(2), V(1)]);
        assert_eq!(t.eq, vec![0, 1, 0]);
        assert!(t.entries_equal(0, 2));
        assert!(!t.entries_equal(0, 1));
    }

    #[test]
    fn adjacency_pattern() {
        let g = colored_path();
        let t = AtomicType::of(&g, &[V(0), V(1), V(3)]);
        assert!(t.entries_adjacent(0, 1));
        assert!(t.entries_adjacent(1, 0));
        assert!(!t.entries_adjacent(0, 2));
        assert!(!t.entries_adjacent(1, 1));
    }

    #[test]
    fn colors_recorded() {
        let g = colored_path();
        let t = AtomicType::of(&g, &[V(0), V(1)]);
        let w = g.words_per_vertex();
        assert!(t.entry_has_color(0, 0, w)); // V(0) is Red
        assert!(!t.entry_has_color(1, 0, w));
    }

    #[test]
    fn equal_patterns_equal_types() {
        let g = colored_path();
        // (0,1) and (2,3): Red-then-plain adjacent pairs.
        let a = AtomicType::of(&g, &[V(0), V(1)]);
        let b = AtomicType::of(&g, &[V(2), V(3)]);
        assert_eq!(a, b);
        // (1,2): plain-then-Red — different.
        let c = AtomicType::of(&g, &[V(1), V(2)]);
        assert_ne!(a, c);
    }

    #[test]
    fn empty_tuple() {
        let g = colored_path();
        let t = AtomicType::of(&g, &[]);
        assert_eq!(t.k, 0);
        assert!(t.eq.is_empty());
    }

    #[test]
    fn cross_graph_comparability() {
        let vocab = Vocabulary::new(["Red"]);
        let g1 = generators::path(3, vocab.clone());
        let g2 = generators::path(10, vocab);
        let a = AtomicType::of(&g1, &[V(0), V(1)]);
        let b = AtomicType::of(&g2, &[V(4), V(5)]);
        assert_eq!(a, b);
    }

    #[test]
    fn pair_index_distinct() {
        let mut seen = std::collections::HashSet::new();
        for j in 1..8 {
            for i in 0..j {
                assert!(seen.insert(pair_index(i, j)));
            }
        }
        assert_eq!(seen.len(), 28);
        assert_eq!(*seen.iter().max().unwrap(), 27);
    }
}
