//! First-order `q`-type machinery.
//!
//! Types are the paper's central tool (Section 2 "Types"): the `q`-type
//! `tp_q(G, v̄)` of a `k`-tuple determines the satisfaction of every
//! `FO[τ, q]`-formula with free variables among `x_1 … x_k`, and — up to
//! logical equivalence — there are only finitely many such types.
//!
//! We realise types by the standard back-and-forth recursion
//!
//! ```text
//! tp_0(G, v̄) = the atomic (quantifier-free) type of v̄
//! tp_q(G, v̄) = ( tp_0(G, v̄), { tp_{q−1}(G, v̄u) | u ∈ V(G) } )
//! ```
//!
//! hash-consed in a [`TypeArena`] so that type equality is id equality,
//! *across graphs over the same vocabulary*. On top of this sit:
//!
//! * local types `ltp_{q,r}(G, v̄) = tp_q(𝒩_r(v̄), v̄)` and the Gaifman
//!   radius `r(q)` of Fact 5 ([`local`]);
//! * Hintikka (characteristic) formulas, turning a type — or a set of
//!   types, i.e. a learned hypothesis — back into a genuine `FO[τ, q]`
//!   formula ([`hintikka`]);
//! * type-based model checking: evaluating a formula *on a type*, the
//!   equivalence `G ⊨ φ(v̄) ⟺ tp_q(G, v̄) ∈ Φ_φ` made executable
//!   ([`satisfies`]);
//! * an independent Ehrenfeucht–Fraïssé game implementation used to
//!   cross-check the arena ([`ef`]);
//! * whole-graph type censuses for the experiments ([`census`]).

pub mod arena;
pub mod atomic;
pub mod canon;
pub mod census;
pub mod compute;
pub mod ef;
pub mod hintikka;
pub mod local;
pub mod par;
pub mod satisfies;

pub use arena::{TypeArena, TypeId, TypeNode};
pub use atomic::AtomicType;
pub use canon::CanonKeys;
pub use compute::TypeComputer;
pub use local::{gaifman_radius, local_type};
