//! Ehrenfeucht–Fraïssé games.
//!
//! The `q`-round EF game characterises `q`-type equality: Duplicator wins
//! the game on `(G, v̄)` vs `(H, w̄)` iff `tp_q(G, v̄) = tp_q(H, w̄)`. This
//! module decides the game directly by back-and-forth recursion *without*
//! going through the type arena, giving an independent oracle that the
//! property tests check the arena against.

use folearn_graph::{Graph, V};

use crate::atomic::AtomicType;

/// Does Duplicator win the `q`-round EF game between `(g, ḡv)` and
/// `(h, h̄v)`? Cost `O((|G|·|H|)^q)` — use on small graphs only.
pub fn duplicator_wins(g: &Graph, gv: &[V], h: &Graph, hv: &[V], q: usize) -> bool {
    assert_eq!(
        g.vocab().as_ref(),
        h.vocab().as_ref(),
        "EF games require a common vocabulary"
    );
    if gv.len() != hv.len() {
        return false;
    }
    if AtomicType::of(g, gv) != AtomicType::of(h, hv) {
        return false;
    }
    if q == 0 {
        return true;
    }
    // Spoiler plays in G: Duplicator must answer in H — and vice versa.
    let mut gext = gv.to_vec();
    gext.push(V(0));
    let mut hext = hv.to_vec();
    hext.push(V(0));
    for a in g.vertices() {
        *gext.last_mut().unwrap() = a;
        let answered = h.vertices().any(|b| {
            *hext.last_mut().unwrap() = b;
            duplicator_wins(g, &gext, h, &hext, q - 1)
        });
        if !answered {
            return false;
        }
    }
    for b in h.vertices() {
        *hext.last_mut().unwrap() = b;
        let answered = g.vertices().any(|a| {
            *gext.last_mut().unwrap() = a;
            duplicator_wins(g, &gext, h, &hext, q - 1)
        });
        if !answered {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::arena::TypeArena;
    use crate::compute::type_of;

    use super::*;

    #[test]
    fn agrees_with_type_arena_on_paths() {
        let vocab = Vocabulary::new(["Red"]);
        let base = generators::path(6, vocab);
        let g = generators::periodically_colored(&base, ColorId(0), 3);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let verts: Vec<V> = g.vertices().collect();
        for q in 0..=2 {
            for &u in &verts {
                for &v in &verts {
                    let types_equal = type_of(&g, &mut arena, &[u], q)
                        == type_of(&g, &mut arena, &[v], q);
                    let ef = duplicator_wins(&g, &[u], &g, &[v], q);
                    assert_eq!(types_equal, ef, "q={q} u={u} v={v}");
                }
            }
        }
    }

    #[test]
    fn cross_graph_game() {
        // P_5's midpoint (distance 2 from the ends) vs P_7's midpoint
        // (distance 3): indistinguishable with one quantifier, separated
        // with two.
        let g = generators::path(5, Vocabulary::empty());
        let h = generators::path(7, Vocabulary::empty());
        assert!(duplicator_wins(&g, &[V(2)], &h, &[V(3)], 1));
        assert!(!duplicator_wins(&g, &[V(2)], &h, &[V(3)], 2));
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        assert_eq!(
            type_of(&g, &mut arena, &[V(2)], 1),
            type_of(&h, &mut arena, &[V(3)], 1)
        );
        assert_ne!(
            type_of(&g, &mut arena, &[V(2)], 2),
            type_of(&h, &mut arena, &[V(3)], 2)
        );
    }

    #[test]
    fn sentences_distinguish_graph_sizes() {
        // K_2 vs K_3 on empty tuples: separated with 3 rounds via counting,
        // and already with 2 rounds (∃x∃y two distinct non-equal...) —
        // check against arena, whatever the truth is.
        let g = generators::clique(2, Vocabulary::empty());
        let h = generators::clique(3, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        for q in 0..=3 {
            assert_eq!(
                duplicator_wins(&g, &[], &h, &[], q),
                type_of(&g, &mut arena, &[], q) == type_of(&h, &mut arena, &[], q),
                "q={q}"
            );
        }
        // Sanity: 3 rounds certainly distinguish 2 vs 3 vertices.
        assert!(!duplicator_wins(&g, &[], &h, &[], 3));
    }

    #[test]
    fn mismatched_tuples_lose_immediately() {
        let g = generators::path(3, Vocabulary::empty());
        assert!(!duplicator_wins(&g, &[V(0)], &g, &[V(0), V(1)], 0));
        assert!(!duplicator_wins(&g, &[V(0), V(1)], &g, &[V(0), V(2)], 0));
    }
}
