//! Hash-consed storage of `q`-types.

use std::collections::HashMap;
use std::sync::Arc;

use folearn_graph::Vocabulary;

use crate::atomic::AtomicType;

/// Identifier of a type within a [`TypeArena`]. Two tuples have the same
/// type (over the arena's vocabulary) iff their computed `TypeId`s are
/// equal — including tuples from *different graphs*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The id's index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stored type: `tp_q(G, v̄)` for some graph and tuple.
///
/// `rank == 0` nodes carry only the atomic type; `rank ≥ 1` nodes also
/// carry the *set* (sorted, deduplicated) of `rank − 1` types of all
/// one-point extensions `v̄u`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TypeNode {
    /// Quantifier-rank budget `q` of this type.
    pub rank: u16,
    /// The counting cap the type was computed with (1 = classical FO).
    /// Types with different caps are distinct objects: they answer
    /// different families of quantifiers.
    pub cap: u32,
    /// Tuple arity `k`.
    pub arity: u16,
    /// The atomic type of the tuple.
    pub atomic: AtomicType,
    /// For `rank ≥ 1`: sorted child type ids (all of rank `rank − 1`,
    /// arity `arity + 1`), one per distinct `(rank−1)`-type of a one-point
    /// extension `v̄u`, *with multiplicities capped at the arena session's
    /// counting cap*. Plain first-order types use cap 1, so every count is
    /// 1 and the children form a set — the classical recursion. Counting
    /// types (cap `t`) record how many witnesses realise each child type,
    /// saturating at `t`, which is exactly the information counting
    /// quantifiers `∃^{≥i}` with `i ≤ t` can access (FO+C, the extension
    /// named in the paper's conclusion). Empty for `rank == 0`, and for
    /// `rank ≥ 1` types of the empty tuple in the *empty* graph (the
    /// `rank` field keeps those apart from rank-0 nodes).
    pub children: Box<[(TypeId, u32)]>,
}

/// A hash-consing arena of types over one fixed vocabulary.
///
/// The arena grows monotonically; `TypeId`s are never invalidated.
pub struct TypeArena {
    vocab: Arc<Vocabulary>,
    nodes: Vec<TypeNode>,
    index: HashMap<TypeNode, TypeId>,
}

impl TypeArena {
    /// A fresh arena for types over `vocab`.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        Self {
            vocab,
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The vocabulary the arena's types speak about.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Intern a node, returning its stable id.
    pub fn intern(&mut self, node: TypeNode) -> TypeId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = TypeId(u32::try_from(self.nodes.len()).expect("type arena overflow"));
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// Access a stored node.
    ///
    /// # Panics
    /// Panics if the id is from a different arena (out of range).
    #[inline]
    pub fn node(&self, id: TypeId) -> &TypeNode {
        &self.nodes[id.index()]
    }

    /// Iterate over all `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &TypeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId(i as u32), n))
    }

    /// Merge every node of `other` into `self`, returning the remap table:
    /// `remap[i.index()]` is the id in `self` of `other`'s node `i`.
    ///
    /// This is how per-worker arenas from a parallel sweep are folded back
    /// into a shared arena: each worker interns types privately (no lock
    /// contention), then the winner's arena is absorbed once at the end.
    /// Nodes are visited in id order, which works because children are
    /// always interned before their parents (child id < parent id) — the
    /// construction order of [`crate::compute::TypeComputer`] and the
    /// local-type helpers.
    ///
    /// # Panics
    /// Panics if the arenas speak different vocabularies.
    pub fn absorb(&mut self, other: &TypeArena) -> Vec<TypeId> {
        assert!(
            self.vocab == other.vocab,
            "absorb requires arenas over the same vocabulary"
        );
        let mut remap: Vec<TypeId> = Vec::with_capacity(other.nodes.len());
        for node in &other.nodes {
            let mut mapped = node.clone();
            for (child, _) in mapped.children.iter_mut() {
                *child = remap[child.index()];
            }
            // Children are canonically sorted by id, and relative id order
            // is arena-local, so the remapped list must be re-sorted to
            // match what direct interning into `self` would produce.
            mapped.children.sort_unstable();
            remap.push(self.intern(mapped));
        }
        remap
    }
}

impl std::fmt::Debug for TypeArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TypeArena({} types over {} colours)",
            self.nodes.len(),
            self.vocab.num_colors()
        )
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary, V};

    use crate::atomic::AtomicType;

    use super::*;

    #[test]
    fn interning_dedups() {
        let g = generators::path(4, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let node = |t: &[V]| TypeNode {
            rank: 0,
            cap: 1,
            arity: t.len() as u16,
            atomic: AtomicType::of(&g, t),
            children: Box::new([]),
        };
        let a = arena.intern(node(&[V(0), V(1)]));
        let b = arena.intern(node(&[V(2), V(3)])); // same pattern
        let c = arena.intern(node(&[V(0), V(2)])); // non-adjacent
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.node(a).arity, 2);
    }

    #[test]
    fn absorb_remaps_children_and_dedups() {
        let g = generators::path(4, Vocabulary::empty());
        let leaf = |t: &[V]| TypeNode {
            rank: 0,
            cap: 1,
            arity: t.len() as u16,
            atomic: AtomicType::of(&g, t),
            children: Box::new([]),
        };
        // Shared arena already knows one leaf; the side arena interns the
        // two leaves in the opposite relative order, so absorbing must
        // both dedup and re-sort children by the new ids.
        let mut main = TypeArena::new(Arc::clone(g.vocab()));
        let pre = main.intern(leaf(&[V(0), V(2)]));
        let mut side = TypeArena::new(Arc::clone(g.vocab()));
        let s_leaf = side.intern(leaf(&[V(0), V(1)]));
        let s_other = side.intern(leaf(&[V(0), V(2)]));
        let s_parent = side.intern(TypeNode {
            rank: 1,
            cap: 1,
            arity: 1,
            atomic: AtomicType::of(&g, &[V(0)]),
            children: Box::new([(s_leaf, 1), (s_other, 1)]),
        });
        // Absorbing into an empty arena is the identity remap.
        let mut fresh = TypeArena::new(Arc::clone(g.vocab()));
        assert_eq!(fresh.absorb(&side), vec![TypeId(0), TypeId(1), TypeId(2)]);
        let remap = main.absorb(&side);
        assert_eq!(remap[s_other.index()], pre); // deduped against existing
        assert_eq!(remap[s_leaf.index()], TypeId(1));
        let parent = main.node(remap[s_parent.index()]);
        // Children now point at main-arena ids, re-sorted: `pre` (id 0)
        // sorts before the absorbed leaf (id 1), inverting the side order.
        assert_eq!(parent.children[0].0, pre);
        assert_eq!(parent.children[1].0, remap[s_leaf.index()]);
        assert_eq!(main.len(), 3);
    }

    #[test]
    fn iteration_matches_len() {
        let g = generators::path(3, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        arena.intern(TypeNode {
            rank: 0,
            cap: 1,
            arity: 1,
            atomic: AtomicType::of(&g, &[V(0)]),
            children: Box::new([]),
        });
        assert_eq!(arena.iter().count(), arena.len());
        assert!(!arena.is_empty());
    }
}
