//! Hash-consed storage of `q`-types.

use std::collections::HashMap;
use std::sync::Arc;

use folearn_graph::Vocabulary;

use crate::atomic::AtomicType;

/// Identifier of a type within a [`TypeArena`]. Two tuples have the same
/// type (over the arena's vocabulary) iff their computed `TypeId`s are
/// equal — including tuples from *different graphs*.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TypeId(pub u32);

impl TypeId {
    /// The id's index into the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A stored type: `tp_q(G, v̄)` for some graph and tuple.
///
/// `rank == 0` nodes carry only the atomic type; `rank ≥ 1` nodes also
/// carry the *set* (sorted, deduplicated) of `rank − 1` types of all
/// one-point extensions `v̄u`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TypeNode {
    /// Quantifier-rank budget `q` of this type.
    pub rank: u16,
    /// The counting cap the type was computed with (1 = classical FO).
    /// Types with different caps are distinct objects: they answer
    /// different families of quantifiers.
    pub cap: u32,
    /// Tuple arity `k`.
    pub arity: u16,
    /// The atomic type of the tuple.
    pub atomic: AtomicType,
    /// For `rank ≥ 1`: sorted child type ids (all of rank `rank − 1`,
    /// arity `arity + 1`), one per distinct `(rank−1)`-type of a one-point
    /// extension `v̄u`, *with multiplicities capped at the arena session's
    /// counting cap*. Plain first-order types use cap 1, so every count is
    /// 1 and the children form a set — the classical recursion. Counting
    /// types (cap `t`) record how many witnesses realise each child type,
    /// saturating at `t`, which is exactly the information counting
    /// quantifiers `∃^{≥i}` with `i ≤ t` can access (FO+C, the extension
    /// named in the paper's conclusion). Empty for `rank == 0`, and for
    /// `rank ≥ 1` types of the empty tuple in the *empty* graph (the
    /// `rank` field keeps those apart from rank-0 nodes).
    pub children: Box<[(TypeId, u32)]>,
}

/// A hash-consing arena of types over one fixed vocabulary.
///
/// The arena grows monotonically; `TypeId`s are never invalidated.
pub struct TypeArena {
    vocab: Arc<Vocabulary>,
    nodes: Vec<TypeNode>,
    index: HashMap<TypeNode, TypeId>,
}

impl TypeArena {
    /// A fresh arena for types over `vocab`.
    pub fn new(vocab: Arc<Vocabulary>) -> Self {
        Self {
            vocab,
            nodes: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// The vocabulary the arena's types speak about.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }

    /// Number of distinct types interned so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Intern a node, returning its stable id.
    pub fn intern(&mut self, node: TypeNode) -> TypeId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = TypeId(u32::try_from(self.nodes.len()).expect("type arena overflow"));
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// Access a stored node.
    ///
    /// # Panics
    /// Panics if the id is from a different arena (out of range).
    #[inline]
    pub fn node(&self, id: TypeId) -> &TypeNode {
        &self.nodes[id.index()]
    }

    /// Iterate over all `(id, node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TypeId, &TypeNode)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (TypeId(i as u32), n))
    }
}

impl std::fmt::Debug for TypeArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TypeArena({} types over {} colours)",
            self.nodes.len(),
            self.vocab.num_colors()
        )
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, Vocabulary, V};

    use crate::atomic::AtomicType;

    use super::*;

    #[test]
    fn interning_dedups() {
        let g = generators::path(4, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let node = |t: &[V]| TypeNode {
            rank: 0,
            cap: 1,
            arity: t.len() as u16,
            atomic: AtomicType::of(&g, t),
            children: Box::new([]),
        };
        let a = arena.intern(node(&[V(0), V(1)]));
        let b = arena.intern(node(&[V(2), V(3)])); // same pattern
        let c = arena.intern(node(&[V(0), V(2)])); // non-adjacent
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.node(a).arity, 2);
    }

    #[test]
    fn iteration_matches_len() {
        let g = generators::path(3, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        arena.intern(TypeNode {
            rank: 0,
            cap: 1,
            arity: 1,
            atomic: AtomicType::of(&g, &[V(0)]),
            children: Box::new([]),
        });
        assert_eq!(arena.iter().count(), arena.len());
        assert!(!arena.is_empty());
    }
}
