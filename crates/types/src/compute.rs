//! Computing `tp_q(G, v̄)` by memoised back-and-forth recursion.

use std::collections::HashMap;

use folearn_graph::{Graph, V};

use crate::arena::{TypeArena, TypeId, TypeNode};
use crate::atomic::AtomicType;

/// A type computation session for one graph.
///
/// The computer memoises `(tuple, rank) → TypeId` within the graph, and
/// interns results into a shared [`TypeArena`], so types computed for
/// different graphs (in different sessions over the same arena) remain
/// comparable by id.
///
/// The *counting cap* generalises the recursion to first-order logic with
/// counting (FO+C): children record how many one-point extensions realise
/// each child type, saturating at the cap. Cap 1 is classical FO — two
/// tuples get equal type ids iff they satisfy the same `FO[τ,q]` formulas;
/// cap `t` decides all counting quantifiers `∃^{≥i}` with `i ≤ t` as well.
///
/// The cost of `type_of(v̄, q)` is `O(n^q)` tuple extensions — the
/// finite-but-XP blow-up the paper's Section 2 normal form hides; all
/// learner entry points confine it to bounded neighbourhoods or bounded
/// `q`.
pub struct TypeComputer<'g, 'a> {
    graph: &'g Graph,
    arena: &'a mut TypeArena,
    cap: u32,
    memo: HashMap<(Vec<V>, u16), TypeId>,
}

impl<'g, 'a> TypeComputer<'g, 'a> {
    /// Start a classical FO session (counting cap 1) for `graph`.
    ///
    /// # Panics
    /// Panics if the graph's vocabulary differs from the arena's.
    pub fn new(graph: &'g Graph, arena: &'a mut TypeArena) -> Self {
        Self::with_cap(graph, arena, 1)
    }

    /// Start a counting session: child multiplicities saturate at `cap`.
    ///
    /// # Panics
    /// Panics if `cap == 0` or the vocabularies differ.
    pub fn with_cap(graph: &'g Graph, arena: &'a mut TypeArena, cap: u32) -> Self {
        assert!(cap >= 1, "the counting cap must be at least 1");
        assert_eq!(
            graph.vocab().as_ref(),
            arena.vocab().as_ref(),
            "graph and arena must share a vocabulary"
        );
        Self {
            graph,
            arena,
            cap,
            memo: HashMap::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// Compute `tp_q(G, v̄)` (with this session's counting cap).
    pub fn type_of(&mut self, tuple: &[V], q: usize) -> TypeId {
        let rank = u16::try_from(q).expect("quantifier rank too large");
        if let Some(&id) = self.memo.get(&(tuple.to_vec(), rank)) {
            return id;
        }
        let id = self.compute(tuple, rank);
        self.memo.insert((tuple.to_vec(), rank), id);
        id
    }

    fn compute(&mut self, tuple: &[V], rank: u16) -> TypeId {
        let atomic = AtomicType::of(self.graph, tuple);
        let children: Box<[(TypeId, u32)]> = if rank == 0 {
            Box::new([])
        } else {
            let mut ext = Vec::with_capacity(tuple.len() + 1);
            ext.extend_from_slice(tuple);
            ext.push(V(0));
            let mut counts: HashMap<TypeId, u32> = HashMap::new();
            for u in self.graph.vertices() {
                *ext.last_mut().unwrap() = u;
                let child = self.type_of(&ext, (rank - 1) as usize);
                let c = counts.entry(child).or_insert(0);
                *c = (*c + 1).min(self.cap);
            }
            let mut kids: Vec<(TypeId, u32)> = counts.into_iter().collect();
            kids.sort_unstable();
            kids.into_boxed_slice()
        };
        self.arena.intern(TypeNode {
            rank,
            cap: self.cap,
            arity: tuple.len() as u16,
            atomic,
            children,
        })
    }
}

/// Convenience: compute a single classical (cap 1) type with a throwaway
/// session.
///
/// ```
/// use std::sync::Arc;
/// use folearn_graph::{generators, Vocabulary, V};
/// use folearn_types::{TypeArena, compute::type_of};
///
/// let g = generators::path(7, Vocabulary::empty());
/// let mut arena = TypeArena::new(Arc::clone(g.vocab()));
/// // Endpoints share a 2-type; the midpoint has a different one.
/// assert_eq!(type_of(&g, &mut arena, &[V(0)], 2),
///            type_of(&g, &mut arena, &[V(6)], 2));
/// assert_ne!(type_of(&g, &mut arena, &[V(0)], 2),
///            type_of(&g, &mut arena, &[V(3)], 2));
/// ```
pub fn type_of(g: &Graph, arena: &mut TypeArena, tuple: &[V], q: usize) -> TypeId {
    TypeComputer::new(g, arena).type_of(tuple, q)
}

/// Convenience: compute a single counting type with a throwaway session.
pub fn counting_type_of(
    g: &Graph,
    arena: &mut TypeArena,
    tuple: &[V],
    q: usize,
    cap: u32,
) -> TypeId {
    TypeComputer::with_cap(g, arena, cap).type_of(tuple, q)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, ops, ColorId, Vocabulary};

    use super::*;

    #[test]
    fn rank_zero_equals_atomic() {
        let g = generators::path(4, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let a = type_of(&g, &mut arena, &[V(0), V(1)], 0);
        let b = type_of(&g, &mut arena, &[V(1), V(2)], 0);
        assert_eq!(a, b);
    }

    #[test]
    fn rank_two_distinguishes_degree() {
        // One quantifier cannot count neighbours: on an uncoloured path
        // all vertices share one 1-type (each sees "equal / adjacent /
        // non-adjacent" extensions). Two quantifiers separate endpoints
        // (degree 1) from midpoints via ∃y∃z (E(x,y) ∧ E(x,z) ∧ y ≠ z).
        let g = generators::path(5, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let mut c = TypeComputer::new(&g, &mut arena);
        assert_eq!(c.type_of(&[V(0)], 1), c.type_of(&[V(2)], 1));
        assert_eq!(c.type_of(&[V(0)], 2), c.type_of(&[V(4)], 2));
        assert_ne!(c.type_of(&[V(0)], 2), c.type_of(&[V(2)], 2));
    }

    #[test]
    fn rank_two_sees_distance_two_from_the_end() {
        // tp_2 on a long path has exactly four unary classes: endpoints,
        // distance 1, distance 2, and everything deeper (the pair types of
        // (v, endpoint-side vertices) differ up to distance 2).
        let g = generators::path(9, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let mut c = TypeComputer::new(&g, &mut arena);
        assert_eq!(c.type_of(&[V(1)], 1), c.type_of(&[V(2)], 1));
        assert_ne!(c.type_of(&[V(1)], 2), c.type_of(&[V(2)], 2));
        assert_ne!(c.type_of(&[V(2)], 2), c.type_of(&[V(3)], 2));
        assert_eq!(c.type_of(&[V(3)], 2), c.type_of(&[V(4)], 2));
        assert_eq!(c.type_of(&[V(3)], 2), c.type_of(&[V(5)], 2));
    }

    #[test]
    fn counting_types_count_where_fo_cannot() {
        // With one quantifier, FO types cannot separate "one neighbour"
        // from "two neighbours" — counting types with cap 2 can.
        let g = generators::path(5, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let fo_end = type_of(&g, &mut arena, &[V(0)], 1);
        let fo_mid = type_of(&g, &mut arena, &[V(2)], 1);
        assert_eq!(fo_end, fo_mid);
        let c_end = counting_type_of(&g, &mut arena, &[V(0)], 1, 2);
        let c_mid = counting_type_of(&g, &mut arena, &[V(2)], 1, 2);
        assert_ne!(c_end, c_mid);
    }

    #[test]
    fn counting_cap_saturates() {
        // Stars with 5 and 9 leaves: identical counting 1-types at cap 3
        // (both have "≥3" leaf-neighbours), different at cap 7.
        let g5 = generators::star(6, Vocabulary::empty());
        let g9 = generators::star(10, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g5.vocab()));
        assert_eq!(
            counting_type_of(&g5, &mut arena, &[V(0)], 1, 3),
            counting_type_of(&g9, &mut arena, &[V(0)], 1, 3)
        );
        assert_ne!(
            counting_type_of(&g5, &mut arena, &[V(0)], 1, 7),
            counting_type_of(&g9, &mut arena, &[V(0)], 1, 7)
        );
    }

    #[test]
    fn cap_one_counting_equals_plain() {
        let g = generators::random_tree(12, Vocabulary::empty(), 4);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        for v in g.vertices() {
            assert_eq!(
                type_of(&g, &mut arena, &[v], 2),
                counting_type_of(&g, &mut arena, &[v], 2, 1)
            );
        }
    }

    #[test]
    fn types_comparable_across_graphs() {
        // The midpoint of a long path has the same 1-type in two paths of
        // different length (both see: a non-adjacent vertex, an adjacent
        // one, itself).
        let vocab = Vocabulary::empty();
        let g1 = generators::path(9, vocab.clone());
        let g2 = generators::path(13, vocab);
        let mut arena = TypeArena::new(Arc::clone(g1.vocab()));
        let a = type_of(&g1, &mut arena, &[V(4)], 1);
        let b = type_of(&g2, &mut arena, &[V(6)], 1);
        assert_eq!(a, b);
    }

    #[test]
    fn colors_affect_types() {
        let base = generators::path(4, Vocabulary::new(["Red"]));
        let g = generators::periodically_colored(&base, ColorId(0), 2);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let red = type_of(&g, &mut arena, &[V(0)], 0);
        let plain = type_of(&g, &mut arena, &[V(1)], 0);
        assert_ne!(red, plain);
    }

    #[test]
    fn isomorphism_invariance() {
        let g = generators::cycle(6, Vocabulary::empty());
        let perm: Vec<V> = vec![V(3), V(4), V(5), V(0), V(1), V(2)];
        let h = ops::permute(&g, &perm);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        // New vertex i of h corresponds to old vertex perm[i].
        let tg = type_of(&g, &mut arena, &[perm[0], perm[1]], 2);
        let th = type_of(&h, &mut arena, &[V(0), V(1)], 2);
        assert_eq!(tg, th);
    }

    #[test]
    fn empty_tuple_sentence_types() {
        // tp_2((), P_3) ≠ tp_2((), P_1): sentences can tell them apart.
        let g1 = generators::path(3, Vocabulary::empty());
        let g2 = generators::path(1, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g1.vocab()));
        let a = type_of(&g1, &mut arena, &[], 2);
        let b = type_of(&g2, &mut arena, &[], 2);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "share a vocabulary")]
    fn vocab_mismatch_panics() {
        let g = generators::path(2, Vocabulary::new(["A"]));
        let mut arena = TypeArena::new(Arc::new(Vocabulary::empty()));
        TypeComputer::new(&g, &mut arena);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_cap_panics() {
        let g = generators::path(2, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        TypeComputer::with_cap(&g, &mut arena, 0);
    }
}
