//! Whole-graph type censuses.
//!
//! Section 3 of the paper bounds hypothesis classes by
//! `|H_{k,ℓ,q}(G)| = f(k,ℓ,q) · n^ℓ`: the formula part contributes a
//! factor *independent of `n`* because there are only finitely many
//! `q`-types. A census materialises that finiteness: it groups every
//! `k`-tuple (or every vertex) of a graph by its type, which experiments
//! E6/E9 use to measure `f` and which the learners use to build
//! type-majority hypotheses.

use std::collections::HashMap;

use folearn_graph::{Graph, V};

use crate::arena::{TypeArena, TypeId};
use crate::compute::TypeComputer;
use crate::local;

/// Group all `k`-tuples of `g` by global `q`-type. Cost `O(n^k)` type
/// computations — intended for small `k`.
pub fn type_census(
    g: &Graph,
    arena: &mut TypeArena,
    k: usize,
    q: usize,
) -> HashMap<TypeId, Vec<Vec<V>>> {
    let mut out: HashMap<TypeId, Vec<Vec<V>>> = HashMap::new();
    let mut computer = TypeComputer::new(g, arena);
    let mut tuple = vec![V(0); k];
    enumerate(g, &mut computer, &mut tuple, 0, q, &mut out);
    out
}

fn enumerate(
    g: &Graph,
    computer: &mut TypeComputer<'_, '_>,
    tuple: &mut Vec<V>,
    pos: usize,
    q: usize,
    out: &mut HashMap<TypeId, Vec<Vec<V>>>,
) {
    if pos == tuple.len() {
        let t = computer.type_of(tuple, q);
        out.entry(t).or_default().push(tuple.clone());
        return;
    }
    for v in g.vertices() {
        tuple[pos] = v;
        enumerate(g, computer, tuple, pos + 1, q, out);
    }
}

/// Group all `k`-tuples by *local* `(q, r)`-type.
pub fn local_type_census(
    g: &Graph,
    arena: &mut TypeArena,
    k: usize,
    q: usize,
    r: usize,
) -> HashMap<TypeId, Vec<Vec<V>>> {
    let mut out: HashMap<TypeId, Vec<Vec<V>>> = HashMap::new();
    let mut tuple = vec![V(0); k];
    enumerate_local(g, arena, &mut tuple, 0, q, r, &mut out);
    out
}

fn enumerate_local(
    g: &Graph,
    arena: &mut TypeArena,
    tuple: &mut Vec<V>,
    pos: usize,
    q: usize,
    r: usize,
    out: &mut HashMap<TypeId, Vec<Vec<V>>>,
) {
    if pos == tuple.len() {
        let t = local::local_type(g, arena, tuple, q, r);
        out.entry(t).or_default().push(tuple.clone());
        return;
    }
    for v in g.vertices() {
        tuple[pos] = v;
        enumerate_local(g, arena, tuple, pos + 1, q, r, out);
    }
}

/// The number of distinct `q`-types of `k`-tuples realised in `g`.
pub fn count_types(g: &Graph, arena: &mut TypeArena, k: usize, q: usize) -> usize {
    type_census(g, arena, k, q).len()
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, Vocabulary};

    use super::*;

    #[test]
    fn path_unary_types() {
        // P_6, q = 1: one quantifier cannot tell path vertices apart —
        // a single type. q = 2: endpoints / their neighbours / the two
        // middle vertices — three types of size 2 each.
        let g = generators::path(6, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        assert_eq!(type_census(&g, &mut arena, 1, 1).len(), 1);
        let census = type_census(&g, &mut arena, 1, 2);
        assert_eq!(census.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = census.values().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![2, 2, 2]);
    }

    #[test]
    fn census_covers_all_tuples() {
        let g = generators::cycle(5, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let census = type_census(&g, &mut arena, 2, 1);
        let total: usize = census.values().map(Vec::len).sum();
        assert_eq!(total, 25);
    }

    #[test]
    fn type_count_stabilises_with_n() {
        // The number of unary 1-types on paths stabilises at 2 as n grows —
        // the finiteness that bounds f(k, ℓ, q).
        let mut arena = TypeArena::new(Arc::new(Vocabulary::empty()));
        let counts: Vec<usize> = [8, 12, 16, 24]
            .into_iter()
            .map(|n| {
                let g = generators::path(n, Vocabulary::empty());
                count_types(&g, &mut arena, 1, 2)
            })
            .collect();
        assert_eq!(counts, vec![4, 4, 4, 4]);
    }

    #[test]
    fn local_census_respects_radius() {
        let g = generators::path(9, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        // q=2, r=1: endpoints (ball P_2) vs everything else (ball P_3).
        let census = local_type_census(&g, &mut arena, 1, 2, 1);
        assert_eq!(census.len(), 2);
        // Larger radius reveals near-endpoint structure: three classes.
        let census2 = local_type_census(&g, &mut arena, 1, 2, 2);
        assert_eq!(census2.len(), 3);
    }
}
