//! Parallel batch type computation over sharded arenas.
//!
//! Computing types for a batch of tuples is embarrassingly parallel except
//! for the shared hash-consing arena. Locking the arena per intern would
//! serialise the workers, so the batch is split into *fixed-size chunks*:
//! each chunk computes its types into a private [`TypeArena`], and the
//! chunk arenas are then absorbed into the caller's arena in chunk order
//! ([`TypeArena::absorb`]).
//!
//! Because the chunking depends only on the input (never on the thread
//! count or scheduling), and because absorbing chunks in order interns
//! globally-novel types in exactly their order of first occurrence, the
//! returned ids — and the final state of the shared arena — are
//! **identical to a sequential run**, for any thread count. Callers can
//! therefore swap these in for their sequential loops without changing
//! any downstream id-sensitive behaviour.

use std::ops::ControlFlow;
use std::sync::Arc;

use folearn_graph::{Graph, V};

use crate::arena::{TypeArena, TypeId};
use crate::compute::TypeComputer;
use crate::local::counting_local_type;

/// Tuples per shard. Fixed (not derived from the thread count) so that
/// the chunk decomposition — and with it the merged arena's id order —
/// is a pure function of the input.
const CHUNK: usize = 32;

/// Batch [`crate::compute::counting_type_of`]: one global counting type
/// per tuple, computed in parallel, with results and arena state
/// identical to the sequential loop.
pub fn par_counting_types_of(
    g: &Graph,
    arena: &mut TypeArena,
    tuples: &[Vec<V>],
    q: usize,
    cap: u32,
) -> Vec<TypeId> {
    par_types_with(arena, tuples, |shard, chunk, out| {
        let mut computer = TypeComputer::with_cap(g, shard, cap);
        out.extend(chunk.iter().map(|t| computer.type_of(t, q)));
    })
}

/// Batch [`crate::local::counting_local_type`]: one local counting type
/// per tuple, computed in parallel, with results and arena state
/// identical to the sequential loop.
pub fn par_counting_local_types(
    g: &Graph,
    arena: &mut TypeArena,
    tuples: &[Vec<V>],
    q: usize,
    r: usize,
    cap: u32,
) -> Vec<TypeId> {
    par_types_with(arena, tuples, |shard, chunk, out| {
        for t in chunk {
            out.push(counting_local_type(g, shard, t, q, r, cap));
        }
    })
}

/// Chunked parallel skeleton: `fill(shard_arena, chunk_tuples, out_ids)`
/// computes one chunk's types into a private arena.
fn par_types_with(
    arena: &mut TypeArena,
    tuples: &[Vec<V>],
    fill: impl Fn(&mut TypeArena, &[Vec<V>], &mut Vec<TypeId>) + Sync,
) -> Vec<TypeId> {
    if tuples.is_empty() {
        return Vec::new();
    }
    if tuples.len() <= CHUNK || rayon::current_num_threads() == 1 {
        // Small batches (or a sequential ambient) go straight into the
        // shared arena — same result, none of the shard overhead.
        let mut out = Vec::with_capacity(tuples.len());
        fill(arena, tuples, &mut out);
        return out;
    }
    let vocab = Arc::clone(arena.vocab());
    let nchunks = tuples.len().div_ceil(CHUNK);
    let states = rayon::sweep::worker_sweep(
        nchunks,
        1,
        |_| Vec::new(),
        |acc: &mut Vec<(usize, TypeArena, Vec<TypeId>)>, range| {
            for c in range {
                let chunk = &tuples[c * CHUNK..((c + 1) * CHUNK).min(tuples.len())];
                let mut shard = TypeArena::new(Arc::clone(&vocab));
                let mut ids = Vec::with_capacity(chunk.len());
                fill(&mut shard, chunk, &mut ids);
                acc.push((c, shard, ids));
            }
            ControlFlow::Continue(())
        },
    );
    // Re-assemble in chunk order, remapping shard-local ids through the
    // shared arena. Chunk order makes the merge order — and hence every
    // newly assigned id — independent of how workers were scheduled.
    let mut chunks: Vec<(usize, TypeArena, Vec<TypeId>)> =
        states.into_iter().flatten().collect();
    chunks.sort_unstable_by_key(|(c, _, _)| *c);
    let mut out = Vec::with_capacity(tuples.len());
    for (_, shard, ids) in chunks {
        let remap = arena.absorb(&shard);
        out.extend(ids.iter().map(|id| remap[id.index()]));
    }
    out
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::compute::counting_type_of;

    use super::*;

    fn colored_tree(n: usize) -> Graph {
        let base = generators::random_tree(n, Vocabulary::new(["Red"]), 5);
        generators::periodically_colored(&base, ColorId(0), 3)
    }

    #[test]
    fn par_global_types_match_sequential_ids_exactly() {
        let g = colored_tree(64);
        let tuples: Vec<Vec<V>> = g.vertices().map(|v| vec![v]).collect();
        // Sequential reference: stream every tuple through one arena.
        let mut seq_arena = TypeArena::new(Arc::clone(g.vocab()));
        let seq: Vec<TypeId> = tuples
            .iter()
            .map(|t| counting_type_of(&g, &mut seq_arena, t, 2, 1))
            .collect();
        for threads in [1, 2, 3, 8] {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            let mut par_arena = TypeArena::new(Arc::clone(g.vocab()));
            let par = pool
                .install(|| par_counting_types_of(&g, &mut par_arena, &tuples, 2, 1));
            // Not just equivalent: id-for-id identical, arena included.
            assert_eq!(par, seq, "threads={threads}");
            assert_eq!(par_arena.len(), seq_arena.len(), "threads={threads}");
        }
    }

    #[test]
    fn par_local_types_match_sequential_ids_exactly() {
        let g = colored_tree(80);
        let tuples: Vec<Vec<V>> =
            g.vertices().map(|v| vec![v, V(v.0 % 11)]).collect();
        let mut seq_arena = TypeArena::new(Arc::clone(g.vocab()));
        let seq: Vec<TypeId> = tuples
            .iter()
            .map(|t| counting_local_type(&g, &mut seq_arena, t, 1, 2, 2))
            .collect();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let mut par_arena = TypeArena::new(Arc::clone(g.vocab()));
        let par = pool.install(|| {
            par_counting_local_types(&g, &mut par_arena, &tuples, 1, 2, 2)
        });
        assert_eq!(par, seq);
        assert_eq!(par_arena.len(), seq_arena.len());
    }

    #[test]
    fn par_types_into_preloaded_arena() {
        // The shared arena may already hold types from earlier batches;
        // absorbed chunks must dedup against them.
        let g = colored_tree(48);
        let tuples: Vec<Vec<V>> = g.vertices().map(|v| vec![v]).collect();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let first = par_counting_types_of(&g, &mut arena, &tuples, 1, 1);
        let len_after_first = arena.len();
        let again = par_counting_types_of(&g, &mut arena, &tuples, 1, 1);
        assert_eq!(first, again, "re-running the same batch must be stable");
        assert_eq!(arena.len(), len_after_first, "no duplicate types interned");
    }

    #[test]
    fn empty_batch() {
        let g = colored_tree(8);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        assert!(par_counting_types_of(&g, &mut arena, &[], 1, 1).is_empty());
        assert!(arena.is_empty());
    }
}
