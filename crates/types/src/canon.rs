//! Canonical (arena-independent) content hashes of types.
//!
//! `TypeId`s are arena-relative: the same abstract type gets different ids
//! in different arenas because numbering depends on interning order. That
//! is fine inside one process, but a cluster needs to compare hypotheses
//! produced by *different* backends. The canonical key of a type is a
//! Merkle-style structural hash — a function of the node's rank, cap,
//! arity, atomic type, and the *canonical keys* of its children (re-sorted
//! by key, so child ordering is arena-independent too). Two types over the
//! same vocabulary have equal canonical keys iff they are equal as
//! abstract types, up to 64-bit hash collisions.

use std::collections::HashMap;

use crate::arena::{TypeArena, TypeId};

/// FNV-1a over a stream of `u64` words, each fed little-endian.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Memoising canonical-key computer for one arena.
///
/// Keys are cached per `TypeId`; because arenas grow monotonically and
/// never invalidate ids, the cache never goes stale.
pub struct CanonKeys {
    memo: HashMap<TypeId, u64>,
}

impl CanonKeys {
    /// A fresh, empty key cache.
    pub fn new() -> Self {
        Self {
            memo: HashMap::new(),
        }
    }

    /// The canonical key of `id` in `arena`.
    ///
    /// Children are hashed first (the arena is a DAG: children always have
    /// strictly smaller rank), then combined sorted by child key so the
    /// result is independent of the arena's interning order.
    pub fn key(&mut self, arena: &TypeArena, id: TypeId) -> u64 {
        if let Some(&k) = self.memo.get(&id) {
            return k;
        }
        let node = arena.node(id);
        let mut child_keys: Vec<(u64, u32)> = node
            .children
            .iter()
            .map(|&(c, mult)| (self.key(arena, c), mult))
            .collect();
        child_keys.sort_unstable();

        let mut h = Fnv::new();
        // Domain separator so canonical keys can't collide with raw
        // structure hashes by construction choice alone.
        h.word(0x464f_5459_5045_u64); // "FOTYPE"
        h.word(u64::from(node.rank));
        h.word(u64::from(node.cap));
        h.word(u64::from(node.arity));
        let a = &node.atomic;
        h.word(u64::from(a.k));
        h.word(a.eq.len() as u64);
        for &e in &a.eq {
            h.word(u64::from(e));
        }
        h.word(a.adj.len() as u64);
        for &w in &a.adj {
            h.word(w);
        }
        h.word(a.colors.len() as u64);
        for &w in &a.colors {
            h.word(w);
        }
        h.word(child_keys.len() as u64);
        for (k, mult) in child_keys {
            h.word(k);
            h.word(u64::from(mult));
        }
        let key = h.0;
        self.memo.insert(id, key);
        key
    }

    /// Canonical keys of a set of ids, sorted and deduplicated — the
    /// arena-independent identity of a hypothesis's positive type set.
    pub fn key_set<I: IntoIterator<Item = TypeId>>(
        &mut self,
        arena: &TypeArena,
        ids: I,
    ) -> Vec<u64> {
        let mut keys: Vec<u64> = ids.into_iter().map(|id| self.key(arena, id)).collect();
        keys.sort_unstable();
        keys.dedup();
        keys
    }
}

impl Default for CanonKeys {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, ColorId, Vocabulary, V};

    use super::*;
    use crate::compute::TypeComputer;

    fn colored_path(n: usize) -> folearn_graph::Graph {
        let base = generators::path(n, Vocabulary::new(["red"]));
        generators::periodically_colored(&base, ColorId(0), 2)
    }

    /// Interning the same types in different orders (hence with different
    /// `TypeId` numberings) must give identical canonical keys.
    #[test]
    fn keys_are_interning_order_independent() {
        let g = colored_path(6);
        let tuples: Vec<Vec<V>> = (0..6u32).map(|v| vec![V(v)]).collect();

        let mut a1 = TypeArena::new(Arc::clone(g.vocab()));
        let mut keys_fwd = Vec::new();
        {
            let mut tc = TypeComputer::new(&g, &mut a1);
            let ids: Vec<TypeId> = tuples.iter().map(|t| tc.type_of(t, 2)).collect();
            drop(tc);
            let mut ck = CanonKeys::new();
            for id in ids {
                keys_fwd.push(ck.key(&a1, id));
            }
        }

        let mut a2 = TypeArena::new(Arc::clone(g.vocab()));
        let mut keys_rev = Vec::new();
        {
            let mut tc = TypeComputer::new(&g, &mut a2);
            let ids: Vec<TypeId> = tuples.iter().rev().map(|t| tc.type_of(t, 2)).collect();
            drop(tc);
            let mut ck = CanonKeys::new();
            for id in ids.into_iter().rev() {
                keys_rev.push(ck.key(&a2, id));
            }
        }

        assert_eq!(keys_fwd, keys_rev);
    }

    /// Equal keys ⇔ equal `TypeId` within one arena (no collisions on a
    /// small but non-trivial family).
    #[test]
    fn keys_separate_distinct_types() {
        let g = colored_path(8);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let mut tc = TypeComputer::new(&g, &mut arena);
        let ids: Vec<TypeId> = (0..8u32).map(|v| tc.type_of(&[V(v)], 2)).collect();
        drop(tc);
        let mut ck = CanonKeys::new();
        for i in 0..ids.len() {
            for j in 0..ids.len() {
                let ki = ck.key(&arena, ids[i]);
                let kj = ck.key(&arena, ids[j]);
                assert_eq!(ids[i] == ids[j], ki == kj, "tuples {i} vs {j}");
            }
        }
    }

    /// `key_set` sorts and deduplicates.
    #[test]
    fn key_set_is_sorted_and_deduped() {
        let g = colored_path(5);
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let mut tc = TypeComputer::new(&g, &mut arena);
        let ids: Vec<TypeId> = (0..5u32).map(|v| tc.type_of(&[V(v)], 1)).collect();
        drop(tc);
        let mut ck = CanonKeys::new();
        let doubled: Vec<TypeId> = ids.iter().chain(ids.iter()).copied().collect();
        let keys = ck.key_set(&arena, doubled);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(keys, sorted);
    }
}
