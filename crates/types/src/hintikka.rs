//! Hintikka (characteristic) formulas of types.
//!
//! Every `q`-type `θ` of arity `k` has a characteristic formula
//! `hin_θ(x_0 … x_{k−1})` of quantifier rank exactly `q` such that for all
//! graphs `G` (over the vocabulary) and tuples `v̄`:
//! `G ⊨ hin_θ(v̄) ⟺ tp_q(G, v̄) = θ`. This is how a learned type-set
//! hypothesis is materialised back into the honest `FO[τ, q]` formula the
//! ERM problem statement asks for: the hypothesis `Φ` becomes
//! `⋁_{θ ∈ Φ} hin_θ`.
//!
//! The construction is the classical one:
//!
//! ```text
//! hin(θ) = δ(θ) ∧ ⋀_{c ∈ children(θ)} ∃x_k hin(c)
//!               ∧ ∀x_k ⋁_{c ∈ children(θ)} hin(c)
//! ```
//!
//! where `δ(θ)` is the atomic description. At the root the description
//! covers the whole tuple; in recursive calls it only describes the facts
//! involving the freshly quantified position — ancestors pinned the rest.
//!
//! Sizes grow as `(#children)^q`; materialise formulas for small `q` (the
//! learner's default path never needs to, it classifies on types).

use folearn_graph::ColorId;
use folearn_logic::{Formula, Var};

use crate::arena::{TypeArena, TypeId, TypeNode};

/// The characteristic formula of `tid`, with free variables
/// `x_0 … x_{arity−1}` and quantifier rank equal to the type's rank.
pub fn hintikka(arena: &TypeArena, tid: TypeId) -> Formula {
    let node = arena.node(tid);
    let full = atomic_description(arena, node, 0);
    Formula::and([full, expansion(arena, node)])
}

/// The hypothesis formula of a type set: `⋁_{θ ∈ Φ} hin_θ`.
pub fn type_set_formula(arena: &TypeArena, type_set: &[TypeId]) -> Formula {
    Formula::or(type_set.iter().map(|&t| hintikka(arena, t)))
}

/// Characteristic formula describing only the facts that involve
/// positions `≥ from` (plus recursion).
fn hintikka_incremental(arena: &TypeArena, tid: TypeId, from: usize) -> Formula {
    let node = arena.node(tid);
    let delta = atomic_description(arena, node, from);
    Formula::and([delta, expansion(arena, node)])
}

fn expansion(arena: &TypeArena, node: &TypeNode) -> Formula {
    if node.rank == 0 {
        return Formula::TRUE;
    }
    let fresh: Var = node.arity;
    let new_pos = node.arity as usize;
    let mut parts: Vec<Formula> = Vec::with_capacity(node.children.len() + 1);
    for &(c, count) in node.children.iter() {
        // cap 1 (classical FO): plain ∃. cap > 1 (FO+C): pin the capped
        // multiplicity with ∃^{≥count} and, when unsaturated, ¬∃^{≥count+1}.
        parts.push(Formula::counting_exists(
            count,
            fresh,
            hintikka_incremental(arena, c, new_pos),
        ));
        if count < node.cap {
            parts.push(
                Formula::counting_exists(
                    count + 1,
                    fresh,
                    hintikka_incremental(arena, c, new_pos),
                )
                .not(),
            );
        }
    }
    parts.push(Formula::forall(
        fresh,
        Formula::or(
            node.children
                .iter()
                .map(|&(c, _)| hintikka_incremental(arena, c, new_pos)),
        ),
    ));
    Formula::and(parts)
}

/// Atomic description of a node, restricted to literals touching a
/// position `≥ from`.
fn atomic_description(arena: &TypeArena, node: &TypeNode, from: usize) -> Formula {
    let a = node.arity as usize;
    let w = arena.vocab().words_per_vertex();
    let mut lits = Vec::new();
    for j in 0..a {
        for i in 0..j {
            if j < from {
                continue;
            }
            let eq = Formula::Eq(i as Var, j as Var);
            lits.push(if node.atomic.entries_equal(i, j) {
                eq
            } else {
                eq.not()
            });
            let edge = Formula::Edge(i as Var, j as Var);
            lits.push(if node.atomic.entries_adjacent(i, j) {
                edge
            } else {
                edge.not()
            });
        }
    }
    for i in from..a {
        for c in 0..arena.vocab().num_colors() {
            let atom = Formula::Color(ColorId(c as u16), i as Var);
            lits.push(if node.atomic.entry_has_color(i, c, w) {
                atom
            } else {
                atom.not()
            });
        }
    }
    Formula::and(lits)
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, ColorId, Vocabulary, V};
    use folearn_logic::eval;

    use crate::arena::TypeArena;
    use crate::compute::type_of;

    use super::*;

    fn colored_path() -> folearn_graph::Graph {
        let g = generators::path(6, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), 3)
    }

    #[test]
    fn characterises_exactly_its_type() {
        let g = colored_path();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        for q in 0..=1 {
            let types: Vec<_> = g
                .vertices()
                .map(|v| type_of(&g, &mut arena, &[v], q))
                .collect();
            for (v, &tv) in g.vertices().zip(&types) {
                let hin = hintikka(&arena, tv);
                assert_eq!(hin.quantifier_rank(), q);
                assert_eq!(hin.free_vars(), vec![0]);
                for (u, &tu) in g.vertices().zip(&types) {
                    assert_eq!(
                        eval::satisfies(&g, &hin, &[u]),
                        tu == tv,
                        "q={q} hin of {v} evaluated at {u}"
                    );
                }
            }
        }
    }

    #[test]
    fn characterises_across_graphs() {
        // The Hintikka formula of a P_3-endpoint type must reject clique
        // vertices.
        let p = generators::path(3, Vocabulary::empty());
        let k = generators::clique(3, Vocabulary::empty());
        let mut arena = TypeArena::new(Arc::clone(p.vocab()));
        let t_end = type_of(&p, &mut arena, &[V(0)], 1);
        let hin = hintikka(&arena, t_end);
        assert!(eval::satisfies(&p, &hin, &[V(0)]));
        assert!(!eval::satisfies(&k, &hin, &[V(0)]));
    }

    #[test]
    fn pair_types_round_trip() {
        let g = colored_path();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let t = type_of(&g, &mut arena, &[V(0), V(1)], 1);
        let hin = hintikka(&arena, t);
        assert_eq!(hin.free_vars(), vec![0, 1]);
        for u in g.vertices() {
            for v in g.vertices() {
                let same = type_of(&g, &mut arena, &[u, v], 1) == t;
                assert_eq!(eval::satisfies(&g, &hin, &[u, v]), same, "{u},{v}");
            }
        }
    }

    #[test]
    fn type_set_formula_is_union() {
        let g = colored_path();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let q = 1;
        let t0 = type_of(&g, &mut arena, &[V(0)], q);
        let t3 = type_of(&g, &mut arena, &[V(3)], q);
        let mut set = vec![t0, t3];
        set.sort_unstable();
        set.dedup();
        let phi = type_set_formula(&arena, &set);
        for v in g.vertices() {
            let expected = set.contains(&type_of(&g, &mut arena, &[v], q));
            assert_eq!(eval::satisfies(&g, &phi, &[v]), expected, "{v}");
        }
    }

    #[test]
    fn empty_type_set_is_false() {
        let arena = TypeArena::new(Arc::new(Vocabulary::empty()));
        assert_eq!(type_set_formula(&arena, &[]), Formula::FALSE);
    }
}
