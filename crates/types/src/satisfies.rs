//! Type-based model checking.
//!
//! Section 2 of the paper: for every `FO[τ, q]`-formula `φ(x_1 … x_k)`
//! there is a set `Φ` of `k`-variable `q`-types with
//! `G ⊨ φ(v̄) ⟺ tp_q(G, v̄) ∈ Φ`. Equivalently, a `q`-type *decides*
//! every formula of quantifier rank `≤ q` — which this module makes
//! executable: [`type_satisfies`] evaluates a formula against a stored
//! type, never touching the graph the type came from.
//!
//! This yields a second, independent model-checking algorithm (compute the
//! type, then evaluate on it), cross-checked against the naive evaluator
//! in the test suites, and it is how learned type-set hypotheses classify.

use folearn_graph::V;
use folearn_logic::{Formula, Var};

use crate::arena::{TypeArena, TypeId};

/// Evaluate `φ` on a type. Free variable `x_i` of `φ` denotes position `i`
/// of the typed tuple.
///
/// # Panics
/// Panics if `φ`'s quantifier rank exceeds the type's rank, a free
/// variable is out of the tuple's arity, or a colour atom lies outside the
/// arena's vocabulary.
pub fn type_satisfies(arena: &TypeArena, tid: TypeId, phi: &Formula) -> bool {
    let node = arena.node(tid);
    assert!(
        phi.quantifier_rank() <= node.rank as usize,
        "formula rank {} exceeds type rank {}",
        phi.quantifier_rank(),
        node.rank
    );
    let arity = node.arity as usize;
    let mut map: Vec<Option<usize>> = (0..arity).map(Some).collect();
    go(arena, tid, phi, &mut map)
}

fn slot(map: &[Option<usize>], var: Var) -> usize {
    map.get(var as usize)
        .copied()
        .flatten()
        .unwrap_or_else(|| panic!("variable x{var} not bound to a tuple position"))
}

fn go(arena: &TypeArena, tid: TypeId, phi: &Formula, map: &mut Vec<Option<usize>>) -> bool {
    let node = arena.node(tid);
    let w = arena.vocab().words_per_vertex();
    match phi {
        Formula::Bool(b) => *b,
        Formula::Eq(a, b) => node.atomic.entries_equal(slot(map, *a), slot(map, *b)),
        Formula::Edge(a, b) => node
            .atomic
            .entries_adjacent(slot(map, *a), slot(map, *b)),
        Formula::Color(c, v) => {
            assert!(
                c.index() < arena.vocab().num_colors(),
                "colour {c} outside the arena's vocabulary"
            );
            node.atomic.entry_has_color(slot(map, *v), c.index(), w)
        }
        Formula::Not(f) => !go(arena, tid, f, map),
        Formula::And(fs) => fs.iter().all(|f| go(arena, tid, f, map)),
        Formula::Or(fs) => fs.iter().any(|f| go(arena, tid, f, map)),
        Formula::Exists(var, body) => quantify(arena, tid, *var, body, map, Quantifier::Exists),
        Formula::Forall(var, body) => quantify(arena, tid, *var, body, map, Quantifier::Forall),
        Formula::CountingExists(t, var, body) => {
            quantify(arena, tid, *var, body, map, Quantifier::AtLeast(*t))
        }
    }
}

enum Quantifier {
    Exists,
    Forall,
    AtLeast(u32),
}

fn quantify(
    arena: &TypeArena,
    tid: TypeId,
    var: Var,
    body: &Formula,
    map: &mut Vec<Option<usize>>,
    quantifier: Quantifier,
) -> bool {
    let node = arena.node(tid);
    assert!(
        node.rank >= 1,
        "quantifier encountered but type rank is exhausted"
    );
    if let Quantifier::AtLeast(t) = quantifier {
        assert!(
            t <= node.cap,
            "counting threshold {t} exceeds the type's counting cap {}",
            node.cap
        );
    }
    let new_pos = node.arity as usize;
    let idx = var as usize;
    if idx >= map.len() {
        map.resize(idx + 1, None);
    }
    let saved = map[idx];
    map[idx] = Some(new_pos);
    let children = node.children.clone(); // ids + capped counts; cheap
    let result = match quantifier {
        Quantifier::Exists => children.iter().any(|&(c, _)| go(arena, c, body, map)),
        Quantifier::Forall => children.iter().all(|&(c, _)| go(arena, c, body, map)),
        Quantifier::AtLeast(t) => {
            let mut total: u64 = 0;
            for &(c, count) in children.iter() {
                if go(arena, c, body, map) {
                    total += u64::from(count);
                    if total >= u64::from(t) {
                        break;
                    }
                }
            }
            total >= u64::from(t)
        }
    };
    map[idx] = saved;
    result
}

/// The set `Φ_φ` restricted to the given types: which of `candidates`
/// satisfy `φ`. With `candidates` = all realised `q`-types of arity `k`,
/// this is exactly the paper's `Φ` from Section 2.
pub fn formula_type_set(
    arena: &TypeArena,
    candidates: &[TypeId],
    phi: &Formula,
) -> Vec<TypeId> {
    candidates
        .iter()
        .copied()
        .filter(|&t| type_satisfies(arena, t, phi))
        .collect()
}

/// Model-check via types: compute `tp_q(G, v̄)` for `q = qr(φ)` and
/// evaluate on the type. Agrees with `folearn_logic::eval::satisfies`
/// (property-tested) while exercising a completely different code path.
pub fn satisfies_via_types(
    g: &folearn_graph::Graph,
    arena: &mut TypeArena,
    phi: &Formula,
    tuple: &[V],
) -> bool {
    let q = phi.quantifier_rank();
    let tid = crate::compute::type_of(g, arena, tuple, q);
    type_satisfies(arena, tid, phi)
}

/// [`satisfies_via_types`] with an explicit direct-evaluation engine for
/// the cross-check: in debug builds the type-based verdict is asserted
/// against the selected backend's direct evaluation of the same query,
/// so either the tree-walker or the bytecode VM can serve as the second
/// opinion. Release builds skip the re-evaluation entirely.
pub fn satisfies_via_types_with_engine(
    g: &folearn_graph::Graph,
    arena: &mut TypeArena,
    phi: &Formula,
    tuple: &[V],
    engine: folearn_logic::vm::EvalEngine,
) -> bool {
    let typed = satisfies_via_types(g, arena, phi, tuple);
    debug_assert_eq!(
        typed,
        engine.satisfies(g, phi, tuple),
        "type-based and {} verdicts diverge on {phi}",
        engine.name()
    );
    typed
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use folearn_graph::{generators, ColorId, Vocabulary};
    use folearn_logic::eval;
    use folearn_logic::parser::parse;

    use crate::compute::type_of;

    use super::*;

    fn colored_path() -> folearn_graph::Graph {
        let g = generators::path(6, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), 3)
    }

    #[test]
    fn agrees_with_naive_eval_on_samples() {
        let g = colored_path();
        let vocab = g.vocab().as_ref().clone();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let formulas = [
            "Red(x0)",
            "exists x1. E(x0, x1) & Red(x1)",
            "forall x1. E(x0, x1) -> !Red(x1)",
            "exists x1. exists x2. E(x0, x1) & E(x1, x2) & x2 != x0",
            "exists x1. x1 != x0 & !E(x0, x1)",
        ];
        for f in formulas {
            let phi = parse(f, &vocab).unwrap();
            for v in g.vertices() {
                let naive = eval::satisfies(&g, &phi, &[v]);
                let typed = satisfies_via_types(&g, &mut arena, &phi, &[v]);
                assert_eq!(naive, typed, "formula {f} at {v}");
            }
        }
    }

    #[test]
    fn sentences_on_empty_tuple_types() {
        let g = colored_path();
        let vocab = g.vocab().as_ref().clone();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let phi = parse("exists x0. Red(x0) & exists x1. E(x0, x1)", &vocab).unwrap();
        assert_eq!(
            satisfies_via_types(&g, &mut arena, &phi, &[]),
            eval::models(&g, &phi)
        );
    }

    #[test]
    fn variable_shadowing() {
        let g = colored_path();
        let vocab = g.vocab().as_ref().clone();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        // Inner ∃x0 shadows the free x0, then the outer conjunct uses the
        // original binding again.
        let phi = parse("(exists x0. Red(x0)) & !Red(x0)", &vocab).unwrap();
        for v in g.vertices() {
            assert_eq!(
                satisfies_via_types(&g, &mut arena, &phi, &[v]),
                eval::satisfies(&g, &phi, &[v]),
                "at {v}"
            );
        }
    }

    #[test]
    fn formula_type_set_partitions() {
        let g = colored_path();
        let vocab = g.vocab().as_ref().clone();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let phi = parse("exists x1. E(x0, x1) & Red(x1)", &vocab).unwrap();
        let q = phi.quantifier_rank();
        let all: Vec<TypeId> = g
            .vertices()
            .map(|v| type_of(&g, &mut arena, &[v], q))
            .collect();
        let mut unique = all.clone();
        unique.sort_unstable();
        unique.dedup();
        let positive = formula_type_set(&arena, &unique, &phi);
        for (v, t) in g.vertices().zip(&all) {
            assert_eq!(
                positive.contains(t),
                eval::satisfies(&g, &phi, &[v]),
                "at {v}"
            );
        }
    }

    #[test]
    fn engine_cross_check_accepts_both_backends() {
        let g = colored_path();
        let vocab = g.vocab().as_ref().clone();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let phi = parse("exists x1. E(x0, x1) & Red(x1)", &vocab).unwrap();
        for engine in [
            folearn_logic::vm::EvalEngine::TreeWalk,
            folearn_logic::vm::EvalEngine::Vm,
        ] {
            for v in g.vertices() {
                assert_eq!(
                    satisfies_via_types_with_engine(&g, &mut arena, &phi, &[v], engine),
                    eval::satisfies(&g, &phi, &[v]),
                    "at {v} with {engine}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "exceeds type rank")]
    fn rank_overflow_panics() {
        let g = colored_path();
        let mut arena = TypeArena::new(Arc::clone(g.vocab()));
        let tid = type_of(&g, &mut arena, &[V(0)], 0);
        let phi = Formula::exists(1, Formula::Edge(0, 1));
        type_satisfies(&arena, tid, &phi);
    }
}
