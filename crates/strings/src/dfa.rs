//! Deterministic finite automata over small alphabets.
//!
//! The substrate for regular position queries: complete DFAs with a
//! transition table, products (intersection/union), complement,
//! Moore-style partition-refinement minimisation, and language-equivalence
//! checking. Alphabets are `0..sigma` (for queries, `sigma = 2·|Σ|`:
//! letters paired with a mark bit).

use std::collections::HashMap;

/// A complete deterministic finite automaton.
#[derive(Clone, Debug)]
pub struct Dfa {
    /// Alphabet size.
    sigma: usize,
    /// `delta[state * sigma + letter]` = successor state.
    delta: Vec<u32>,
    /// Accepting states.
    accepting: Vec<bool>,
    /// Start state.
    start: u32,
}

impl Dfa {
    /// Build from an explicit transition table (`delta[s][a]`).
    ///
    /// # Panics
    /// Panics on malformed tables or out-of-range entries.
    pub fn new(delta: Vec<Vec<u32>>, accepting: Vec<bool>, start: u32) -> Self {
        let states = delta.len();
        assert!(states >= 1, "a DFA needs at least one state");
        assert_eq!(accepting.len(), states);
        let sigma = delta[0].len();
        assert!(sigma >= 1, "alphabet must be non-empty");
        let mut flat = Vec::with_capacity(states * sigma);
        for row in &delta {
            assert_eq!(row.len(), sigma, "ragged transition table");
            for &t in row {
                assert!((t as usize) < states, "transition out of range");
                flat.push(t);
            }
        }
        assert!((start as usize) < states);
        Self {
            sigma,
            delta: flat,
            accepting,
            start,
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// Alphabet size.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// The start state.
    pub fn start(&self) -> u32 {
        self.start
    }

    /// One transition step.
    #[inline]
    pub fn step(&self, state: u32, letter: u8) -> u32 {
        debug_assert!((letter as usize) < self.sigma);
        self.delta[state as usize * self.sigma + letter as usize]
    }

    /// Whether a state accepts.
    #[inline]
    pub fn accepts_state(&self, state: u32) -> bool {
        self.accepting[state as usize]
    }

    /// Run on a word (letters in `0..sigma`), returning the final state.
    pub fn run(&self, word: &[u8]) -> u32 {
        word.iter().fold(self.start, |s, &a| self.step(s, a))
    }

    /// Language membership.
    pub fn accepts(&self, word: &[u8]) -> bool {
        self.accepts_state(self.run(word))
    }

    /// The complement automaton.
    pub fn complement(&self) -> Dfa {
        let mut out = self.clone();
        for a in &mut out.accepting {
            *a = !*a;
        }
        out
    }

    /// Product construction; `both` combines acceptance
    /// (`&&` = intersection, `||` = union).
    pub fn product(&self, other: &Dfa, both: impl Fn(bool, bool) -> bool) -> Dfa {
        assert_eq!(self.sigma, other.sigma, "alphabet mismatch");
        let sigma = self.sigma;
        let mut index: HashMap<(u32, u32), u32> = HashMap::new();
        let mut order: Vec<(u32, u32)> = Vec::new();
        let mut delta: Vec<Vec<u32>> = Vec::new();
        let start_pair = (self.start, other.start);
        index.insert(start_pair, 0);
        order.push(start_pair);
        let mut next = 0usize;
        while next < order.len() {
            let (p, q) = order[next];
            let mut row = Vec::with_capacity(sigma);
            for a in 0..sigma {
                let succ = (self.step(p, a as u8), other.step(q, a as u8));
                let id = *index.entry(succ).or_insert_with(|| {
                    order.push(succ);
                    (order.len() - 1) as u32
                });
                row.push(id);
            }
            delta.push(row);
            next += 1;
        }
        let accepting = order
            .iter()
            .map(|&(p, q)| both(self.accepts_state(p), other.accepts_state(q)))
            .collect();
        Dfa::new(delta, accepting, 0)
    }

    /// Intersection `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a && b)
    }

    /// Union `L(self) ∪ L(other)`.
    pub fn union(&self, other: &Dfa) -> Dfa {
        self.product(other, |a, b| a || b)
    }

    /// Minimise by Moore's partition refinement (reachable part only).
    pub fn minimize(&self) -> Dfa {
        // Restrict to reachable states first.
        let mut reach: Vec<u32> = vec![self.start];
        let mut seen = vec![false; self.num_states()];
        seen[self.start as usize] = true;
        let mut i = 0;
        while i < reach.len() {
            let s = reach[i];
            for a in 0..self.sigma {
                let t = self.step(s, a as u8);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    reach.push(t);
                }
            }
            i += 1;
        }
        // Block id per reachable state; start from accept/reject split.
        // Moore iteration: refine by (block, successor-block signature)
        // until the block count stops growing — refinement is monotone, so
        // a stable count is a fixed point.
        let mut block: HashMap<u32, u32> = reach
            .iter()
            .map(|&s| (s, u32::from(self.accepts_state(s))))
            .collect();
        let mut num_blocks = block
            .values()
            .collect::<std::collections::HashSet<_>>()
            .len();
        loop {
            let mut sig_ids: HashMap<(u32, Vec<u32>), u32> = HashMap::new();
            let mut next_block: HashMap<u32, u32> = HashMap::new();
            for &s in &reach {
                let sig: Vec<u32> = (0..self.sigma)
                    .map(|a| block[&self.step(s, a as u8)])
                    .collect();
                let key = (block[&s], sig);
                let fresh = sig_ids.len() as u32;
                let id = *sig_ids.entry(key).or_insert(fresh);
                next_block.insert(s, id);
            }
            let new_count = sig_ids.len();
            block = next_block;
            if new_count == num_blocks {
                break;
            }
            num_blocks = new_count;
        }
        let num_blocks = block.values().copied().max().unwrap_or(0) as usize + 1;
        let mut delta = vec![vec![0u32; self.sigma]; num_blocks];
        let mut accepting = vec![false; num_blocks];
        for &s in &reach {
            let b = block[&s] as usize;
            accepting[b] = self.accepts_state(s);
            for a in 0..self.sigma {
                delta[b][a] = block[&self.step(s, a as u8)];
            }
        }
        Dfa::new(delta, accepting, block[&self.start])
    }

    /// Language equivalence via product emptiness of the symmetric
    /// difference.
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let diff = self.product(other, |a, b| a != b);
        // Empty iff no accepting state is reachable (product is built from
        // reachable states only).
        !diff.accepting.iter().any(|&a| a)
    }

    /// A shortest accepted word, or `None` if the language is empty
    /// (BFS from the start state). Used as the counterexample oracle in
    /// equivalence queries.
    pub fn find_accepted_word(&self) -> Option<Vec<u8>> {
        if self.accepts_state(self.start) {
            return Some(Vec::new());
        }
        let mut parent: Vec<Option<(u32, u8)>> = vec![None; self.num_states()];
        let mut seen = vec![false; self.num_states()];
        let mut queue = std::collections::VecDeque::new();
        seen[self.start as usize] = true;
        queue.push_back(self.start);
        while let Some(s) = queue.pop_front() {
            for a in 0..self.sigma {
                let t = self.step(s, a as u8);
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    parent[t as usize] = Some((s, a as u8));
                    if self.accepts_state(t) {
                        // Reconstruct the word.
                        let mut word = Vec::new();
                        let mut cur = t;
                        while let Some((p, letter)) = parent[cur as usize] {
                            word.push(letter);
                            cur = p;
                        }
                        word.reverse();
                        return Some(word);
                    }
                    queue.push_back(t);
                }
            }
        }
        None
    }

    // -- small standard automata used to assemble query classes ----------

    /// Accepts every word.
    pub fn all(sigma: usize) -> Dfa {
        Dfa::new(vec![vec![0; sigma]], vec![true], 0)
    }

    /// Accepts words containing at least one occurrence of `letter`.
    pub fn contains(sigma: usize, letter: u8) -> Dfa {
        let mut d0: Vec<u32> = (0..sigma).map(|_| 0).collect();
        d0[letter as usize] = 1;
        Dfa::new(vec![d0, vec![1; sigma]], vec![false, true], 0)
    }

    /// Accepts words whose number of occurrences of `letter` is
    /// `≡ residue (mod m)`.
    pub fn count_mod(sigma: usize, letter: u8, m: u32, residue: u32) -> Dfa {
        assert!(m >= 1 && residue < m);
        let mut delta = Vec::with_capacity(m as usize);
        for s in 0..m {
            let mut row: Vec<u32> = (0..sigma).map(|_| s).collect();
            row[letter as usize] = (s + 1) % m;
            delta.push(row);
        }
        let accepting = (0..m).map(|s| s == residue).collect();
        Dfa::new(delta, accepting, 0)
    }

    /// Accepts words ending in `letter` (rejects the empty word).
    pub fn ends_with(sigma: usize, letter: u8) -> Dfa {
        // State 0: last letter ≠ target (or none); state 1: last = target.
        let row = |_s: u32| -> Vec<u32> {
            (0..sigma)
                .map(|a| u32::from(a == letter as usize))
                .collect()
        };
        Dfa::new(vec![row(0), row(1)], vec![false, true], 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_language() {
        let d = Dfa::contains(2, 1);
        assert!(!d.accepts(&[]));
        assert!(!d.accepts(&[0, 0]));
        assert!(d.accepts(&[0, 1, 0]));
    }

    #[test]
    fn count_mod_language() {
        let even_b = Dfa::count_mod(2, 1, 2, 0);
        assert!(even_b.accepts(&[]));
        assert!(!even_b.accepts(&[1]));
        assert!(even_b.accepts(&[1, 0, 1]));
    }

    #[test]
    fn boolean_combinations() {
        let has_a = Dfa::contains(2, 0);
        let has_b = Dfa::contains(2, 1);
        let both = has_a.intersect(&has_b);
        assert!(both.accepts(&[0, 1]));
        assert!(!both.accepts(&[0, 0]));
        let either = has_a.union(&has_b);
        assert!(either.accepts(&[0]));
        assert!(!either.accepts(&[]));
        let neither = either.complement();
        assert!(neither.accepts(&[]));
    }

    #[test]
    fn minimization_shrinks_and_preserves() {
        // Redundant product: L ∩ L has |Q|² states but minimises back.
        let l = Dfa::count_mod(2, 0, 3, 1);
        let prod = l.intersect(&l);
        let min = prod.minimize();
        assert!(min.num_states() <= l.num_states());
        assert!(min.equivalent(&l));
        assert!(min.equivalent(&prod));
    }

    #[test]
    fn equivalence_is_semantic() {
        let a = Dfa::contains(2, 0);
        let b = Dfa::contains(2, 0).minimize();
        assert!(a.equivalent(&b));
        assert!(!a.equivalent(&Dfa::contains(2, 1)));
        assert!(!a.equivalent(&a.complement()));
    }

    #[test]
    fn ends_with_language() {
        let d = Dfa::ends_with(3, 2);
        assert!(d.accepts(&[0, 1, 2]));
        assert!(!d.accepts(&[2, 1]));
        assert!(!d.accepts(&[]));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_table_rejected() {
        Dfa::new(vec![vec![0, 0], vec![0]], vec![true, false], 0);
    }
}
