//! Strings as logical structures.

use folearn_graph::{Graph, GraphBuilder, Vocabulary, V};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A word over the alphabet `{0, …, sigma−1}`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Word {
    letters: Vec<u8>,
    sigma: u8,
}

impl Word {
    /// A word from explicit letters.
    ///
    /// # Panics
    /// Panics if a letter is `≥ sigma` or `sigma == 0`.
    pub fn new(letters: Vec<u8>, sigma: u8) -> Self {
        assert!(sigma >= 1);
        assert!(letters.iter().all(|&l| l < sigma), "letter out of alphabet");
        Self { letters, sigma }
    }

    /// Parse from ASCII letters `a, b, c, …` (alphabet size inferred as
    /// the number of distinct letters allowed, `sigma`).
    ///
    /// # Panics
    /// Panics on characters outside `a..` or beyond `sigma`.
    pub fn from_ascii(text: &str, sigma: u8) -> Self {
        let letters = text
            .bytes()
            .map(|b| {
                assert!(b.is_ascii_lowercase(), "expected lowercase ascii letters");
                b - b'a'
            })
            .collect();
        Self::new(letters, sigma)
    }

    /// A seeded uniformly random word.
    pub fn random(len: usize, sigma: u8, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Self {
            letters: (0..len).map(|_| rng.random_range(0..sigma)).collect(),
            sigma,
        }
    }

    /// Word length `n`.
    pub fn len(&self) -> usize {
        self.letters.len()
    }

    /// Whether the word is empty.
    pub fn is_empty(&self) -> bool {
        self.letters.is_empty()
    }

    /// Alphabet size.
    pub fn sigma(&self) -> u8 {
        self.sigma
    }

    /// The letter at a position.
    pub fn letter(&self, pos: usize) -> u8 {
        self.letters[pos]
    }

    /// The raw letters.
    pub fn letters(&self) -> &[u8] {
        &self.letters
    }

    /// The standard encoding as a coloured path: position `i` becomes
    /// vertex `V(i)` with successor edges and one colour per letter — the
    /// bridge that lets every graph learner in this workspace run on
    /// strings (the word structure and the coloured path are
    /// FO-interdefinable up to the ordering, which MSO/FO on successor
    /// structures already lack).
    pub fn to_colored_path(&self) -> Graph {
        let vocab = Vocabulary::new(
            (0..self.sigma).map(|l| format!("L{}", (b'a' + l) as char)),
        );
        let mut b = GraphBuilder::with_vertices(vocab, self.len());
        for i in 1..self.len() {
            b.add_edge(V(i as u32 - 1), V(i as u32));
        }
        for (i, &l) in self.letters.iter().enumerate() {
            b.set_color(V(i as u32), folearn_graph::ColorId(u16::from(l)));
        }
        b.build()
    }
}

impl std::fmt::Display for Word {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for &l in &self.letters {
            write!(f, "{}", (b'a' + l) as char)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_round_trip() {
        let w = Word::from_ascii("abba", 2);
        assert_eq!(w.len(), 4);
        assert_eq!(w.letter(0), 0);
        assert_eq!(w.letter(1), 1);
        assert_eq!(w.to_string(), "abba");
    }

    #[test]
    fn random_is_deterministic() {
        assert_eq!(Word::random(20, 3, 5), Word::random(20, 3, 5));
        assert!(Word::random(50, 2, 1).letters().iter().all(|&l| l < 2));
    }

    #[test]
    fn path_encoding_shape() {
        let w = Word::from_ascii("aab", 2);
        let g = w.to_colored_path();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_color(V(0), folearn_graph::ColorId(0)));
        assert!(g.has_color(V(2), folearn_graph::ColorId(1)));
    }

    #[test]
    #[should_panic(expected = "letter out of alphabet")]
    fn alphabet_checked() {
        Word::new(vec![0, 3], 2);
    }
}
