//! ERM over regular position queries in the two-phase model of \[21\].
//!
//! Phase 1 (before any labelled example): preprocess the background word
//! once per candidate query — `O(|Φ'| · n · |Q|)` total. Phase 2: each
//! labelled example costs `O(|Φ'|)` table lookups, so the per-example
//! cost is independent of `n`. The learner returns the candidate with
//! minimal training error — exact ERM over the finite class.

use crate::query::{PositionQuery, Preprocessed};
use crate::word::Word;

/// A labelled position example.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PosExample {
    /// Position in the background word.
    pub pos: usize,
    /// Boolean label.
    pub label: bool,
}

/// The preprocessed learner state (phase 1 output).
pub struct StringLearner<'q, 'w> {
    word: &'w Word,
    tables: Vec<(&'q PositionQuery, Preprocessed<'q, 'w>)>,
}

/// Result of the ERM phase.
#[derive(Debug)]
pub struct StringLearnResult {
    /// Index of the winning candidate in the class.
    pub best_index: usize,
    /// Its name.
    pub best_name: String,
    /// Its training error.
    pub error: f64,
}

impl<'q, 'w> StringLearner<'q, 'w> {
    /// Phase 1: preprocess every candidate on the background word.
    pub fn preprocess(word: &'w Word, class: &'q [PositionQuery]) -> Self {
        let tables = class.iter().map(|q| (q, q.preprocess(word))).collect();
        Self { word, tables }
    }

    /// Phase 2: exact ERM over the class; `O(|Φ'| · m)` lookups.
    ///
    /// # Panics
    /// Panics on an out-of-range example position or an empty class.
    pub fn erm(&self, examples: &[PosExample]) -> StringLearnResult {
        assert!(!self.tables.is_empty(), "empty hypothesis class");
        for e in examples {
            assert!(e.pos < self.word.len(), "example position out of range");
        }
        let mut best = (0usize, usize::MAX);
        for (idx, (_, pre)) in self.tables.iter().enumerate() {
            let wrong = examples
                .iter()
                .filter(|e| pre.classify(e.pos) != e.label)
                .count();
            if wrong < best.1 {
                best = (idx, wrong);
            }
        }
        let (best_index, wrong) = best;
        StringLearnResult {
            best_index,
            best_name: self.tables[best_index].0.name.clone(),
            error: if examples.is_empty() {
                0.0
            } else {
                wrong as f64 / examples.len() as f64
            },
        }
    }

    /// Classify with the chosen hypothesis (constant time).
    pub fn classify(&self, candidate: usize, pos: usize) -> bool {
        self.tables[candidate].1.classify(pos)
    }
}

#[cfg(test)]
mod tests {
    use crate::query::{before_exists, standard_class};

    use super::*;

    fn label_with(q: &PositionQuery, w: &Word, positions: &[usize]) -> Vec<PosExample> {
        let pre = q.preprocess(w);
        positions
            .iter()
            .map(|&pos| PosExample {
                pos,
                label: pre.classify(pos),
            })
            .collect()
    }

    #[test]
    fn recovers_the_planted_query() {
        let w = Word::random(200, 2, 4);
        let class = standard_class(2);
        let target = before_exists(2, 1);
        // Label *every* position: any zero-error winner then agrees with
        // the target on the whole word (sparser samples may legitimately
        // admit several consistent hypotheses).
        let positions: Vec<usize> = (0..w.len()).collect();
        let examples = label_with(&target, &w, &positions);
        let learner = StringLearner::preprocess(&w, &class);
        let result = learner.erm(&examples);
        assert_eq!(result.error, 0.0);
        let target_pre = target.preprocess(&w);
        for pos in 0..w.len() {
            assert_eq!(
                learner.classify(result.best_index, pos),
                target_pre.classify(pos),
                "at {pos}"
            );
        }
    }

    #[test]
    fn sparse_sample_still_reaches_zero_training_error() {
        let w = Word::random(200, 2, 4);
        let class = standard_class(2);
        let target = before_exists(2, 1);
        let positions: Vec<usize> = (0..40).map(|i| i * 5).collect();
        let examples = label_with(&target, &w, &positions);
        let learner = StringLearner::preprocess(&w, &class);
        let result = learner.erm(&examples);
        assert_eq!(result.error, 0.0);
        // Consistency holds on the training positions by definition.
        for e in &examples {
            assert_eq!(learner.classify(result.best_index, e.pos), e.label);
        }
    }

    #[test]
    fn agnostic_labels_pick_the_least_wrong() {
        let w = Word::from_ascii("ababab", 2);
        let class = standard_class(2);
        // Label everything positive: no candidate is perfect; ERM still
        // returns the minimiser.
        let examples: Vec<PosExample> = (0..w.len())
            .map(|pos| PosExample { pos, label: true })
            .collect();
        let learner = StringLearner::preprocess(&w, &class);
        let result = learner.erm(&examples);
        // Brute-force the true optimum over the class.
        let best: f64 = class
            .iter()
            .map(|q| {
                let pre = q.preprocess(&w);
                examples
                    .iter()
                    .filter(|e| pre.classify(e.pos) != e.label)
                    .count() as f64
                    / examples.len() as f64
            })
            .fold(f64::INFINITY, f64::min);
        assert!((result.error - best).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn range_checked() {
        let w = Word::from_ascii("ab", 2);
        let class = standard_class(2);
        let learner = StringLearner::preprocess(&w, &class);
        learner.erm(&[PosExample { pos: 7, label: true }]);
    }
}
