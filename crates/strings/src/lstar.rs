//! Angluin's L\* — exact active learning of regular languages.
//!
//! The paper positions itself against *active* learning ("many of these
//! are concerned with active learning scenarios … whereas we are in a
//! statistical learning setting", Related Work). This module makes the
//! contrast concrete: where the statistical learners of `folearn` see
//! only labelled examples, L\* converses with a teacher through
//! *membership* and *equivalence* queries and identifies the target
//! language **exactly**, with the minimal DFA, in polynomially many
//! queries (Angluin 1987).
//!
//! The implementation is the classical observation-table algorithm with
//! the counterexample handled by adding all its prefixes to the access
//! strings.

use std::collections::HashMap;

use crate::dfa::Dfa;

/// The teacher side of the protocol.
pub trait Teacher {
    /// Alphabet size.
    fn sigma(&self) -> usize;
    /// Membership query: is `word` in the target language?
    fn member(&mut self, word: &[u8]) -> bool;
    /// Equivalence query: `None` = the hypothesis is correct; otherwise a
    /// counterexample word on which they differ.
    fn equivalent(&mut self, hypothesis: &Dfa) -> Option<Vec<u8>>;
}

/// A teacher backed by a known target DFA (equivalence answered through
/// the symmetric-difference product, returning a *shortest*
/// counterexample). Counts queries for the experiments.
pub struct DfaTeacher {
    target: Dfa,
    /// Membership queries asked so far.
    pub membership_queries: usize,
    /// Equivalence queries asked so far.
    pub equivalence_queries: usize,
}

impl DfaTeacher {
    /// Wrap a target automaton.
    pub fn new(target: Dfa) -> Self {
        Self {
            target,
            membership_queries: 0,
            equivalence_queries: 0,
        }
    }
}

impl Teacher for DfaTeacher {
    fn sigma(&self) -> usize {
        self.target.sigma()
    }

    fn member(&mut self, word: &[u8]) -> bool {
        self.membership_queries += 1;
        self.target.accepts(word)
    }

    fn equivalent(&mut self, hypothesis: &Dfa) -> Option<Vec<u8>> {
        self.equivalence_queries += 1;
        let diff = self.target.product(hypothesis, |a, b| a != b);
        diff.find_accepted_word()
    }
}

/// Run L\*: returns the (minimal) DFA of the teacher's target language.
pub fn lstar(teacher: &mut dyn Teacher) -> Dfa {
    let sigma = teacher.sigma();
    // Observation table: access strings S, experiments E, and the map
    // row(s·e) = member(s·e).
    let mut access: Vec<Vec<u8>> = vec![Vec::new()];
    let mut experiments: Vec<Vec<u8>> = vec![Vec::new()];
    let mut cache: HashMap<Vec<u8>, bool> = HashMap::new();

    loop {
        close_table(teacher, sigma, &mut access, &experiments, &mut cache);
        let hypothesis = build_hypothesis(teacher, sigma, &access, &experiments, &mut cache);
        match teacher.equivalent(&hypothesis) {
            None => return hypothesis,
            Some(cex) => {
                // Add every prefix of the counterexample as an access
                // string (Maler–Pnueli style handling keeps the table
                // consistent by construction).
                for end in 1..=cex.len() {
                    let prefix = cex[..end].to_vec();
                    if !access.contains(&prefix) {
                        access.push(prefix);
                    }
                }
                // Also add all suffixes as experiments to guarantee
                // progress (Rivest–Schapire would add one; all is simpler
                // and still polynomial).
                for start in 0..cex.len() {
                    let suffix = cex[start..].to_vec();
                    if !experiments.contains(&suffix) {
                        experiments.push(suffix);
                    }
                }
            }
        }
    }
}

fn query(teacher: &mut dyn Teacher, cache: &mut HashMap<Vec<u8>, bool>, word: Vec<u8>) -> bool {
    if let Some(&b) = cache.get(&word) {
        return b;
    }
    let b = teacher.member(&word);
    cache.insert(word, b);
    b
}

fn row(
    teacher: &mut dyn Teacher,
    cache: &mut HashMap<Vec<u8>, bool>,
    s: &[u8],
    experiments: &[Vec<u8>],
) -> Vec<bool> {
    experiments
        .iter()
        .map(|e| {
            let mut w = s.to_vec();
            w.extend_from_slice(e);
            query(teacher, cache, w)
        })
        .collect()
}

/// Ensure closedness: every one-letter extension of an access string has
/// a row matched by some access string; otherwise promote the extension.
fn close_table(
    teacher: &mut dyn Teacher,
    sigma: usize,
    access: &mut Vec<Vec<u8>>,
    experiments: &[Vec<u8>],
    cache: &mut HashMap<Vec<u8>, bool>,
) {
    loop {
        let rows: Vec<Vec<bool>> = access
            .iter()
            .map(|s| row(teacher, cache, s, experiments))
            .collect();
        let mut promoted = false;
        'outer: for i in 0..access.len() {
            for a in 0..sigma {
                let mut ext = access[i].clone();
                ext.push(a as u8);
                let ext_row = row(teacher, cache, &ext, experiments);
                if !rows.contains(&ext_row) && !access.contains(&ext) {
                    access.push(ext);
                    promoted = true;
                    break 'outer;
                }
            }
        }
        if !promoted {
            return;
        }
    }
}

fn build_hypothesis(
    teacher: &mut dyn Teacher,
    sigma: usize,
    access: &[Vec<u8>],
    experiments: &[Vec<u8>],
    cache: &mut HashMap<Vec<u8>, bool>,
) -> Dfa {
    // Distinct rows become states; the representative is the first access
    // string with that row.
    let mut state_of_row: HashMap<Vec<bool>, u32> = HashMap::new();
    let mut reps: Vec<Vec<u8>> = Vec::new();
    let mut rows_of_access: Vec<Vec<bool>> = Vec::new();
    for s in access {
        let r = row(teacher, cache, s, experiments);
        rows_of_access.push(r.clone());
        if let std::collections::hash_map::Entry::Vacant(e) = state_of_row.entry(r) {
            e.insert(reps.len() as u32);
            reps.push(s.clone());
        }
    }
    let n = reps.len();
    let mut delta = vec![vec![0u32; sigma]; n];
    let mut accepting = vec![false; n];
    for (q, rep) in reps.iter().enumerate() {
        accepting[q] = query(teacher, cache, rep.clone());
        for (a, cell) in delta[q].iter_mut().enumerate() {
            let mut ext = rep.clone();
            ext.push(a as u8);
            let r = row(teacher, cache, &ext, experiments);
            // Closedness guarantees the row exists.
            *cell = *state_of_row
                .get(&r)
                .expect("table is closed after close_table");
        }
    }
    let start_row = rows_of_access[0].clone();
    Dfa::new(delta, accepting, state_of_row[&start_row])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn learn(target: Dfa) -> (Dfa, usize, usize) {
        let mut teacher = DfaTeacher::new(target.clone());
        let learned = lstar(&mut teacher);
        assert!(
            learned.equivalent(&target),
            "learned automaton differs from target"
        );
        (
            learned,
            teacher.membership_queries,
            teacher.equivalence_queries,
        )
    }

    #[test]
    fn learns_contains() {
        let (learned, _, eq) = learn(Dfa::contains(2, 1));
        assert_eq!(learned.num_states(), 2);
        assert!(eq <= 3);
    }

    #[test]
    fn learns_modular_counting() {
        let target = Dfa::count_mod(2, 0, 3, 1);
        let (learned, members, _) = learn(target);
        assert_eq!(learned.num_states(), 3); // minimal
        assert!(members < 200, "used {members} membership queries");
    }

    #[test]
    fn learns_products_minimally() {
        // Intersection with 2×3 = 6 product states, but minimal size 6;
        // L* must land on the minimal automaton.
        let target = Dfa::count_mod(2, 0, 2, 0).intersect(&Dfa::count_mod(2, 1, 3, 0));
        let minimal = target.minimize();
        let (learned, _, _) = learn(target);
        assert_eq!(learned.num_states(), minimal.num_states());
    }

    #[test]
    fn learns_empty_and_full_languages() {
        let (full, _, _) = learn(Dfa::all(2));
        assert_eq!(full.num_states(), 1);
        let (empty, _, _) = learn(Dfa::all(2).complement());
        assert_eq!(empty.num_states(), 1);
    }

    #[test]
    fn random_targets_are_learned_exactly() {
        use rand::{Rng, SeedableRng};
        for seed in 0..10u64 {
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let states = rng.random_range(2..6);
            let sigma = 2usize;
            let delta: Vec<Vec<u32>> = (0..states)
                .map(|_| (0..sigma).map(|_| rng.random_range(0..states as u32)).collect())
                .collect();
            let accepting: Vec<bool> = (0..states).map(|_| rng.random_bool(0.5)).collect();
            let target = Dfa::new(delta, accepting, 0);
            let (learned, _, _) = learn(target.clone());
            assert_eq!(
                learned.num_states(),
                target.minimize().num_states(),
                "seed {seed}: not minimal"
            );
        }
    }
}
