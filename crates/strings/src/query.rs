//! Regular position queries and the \[21\] preprocessing scheme.
//!
//! A *position query* on words over `Σ` is given by a DFA `A` over the
//! marked alphabet `Σ × {0,1}`: position `i` of `w` is selected iff `A`
//! accepts `w` with the mark set exactly at position `i`. By
//! Büchi–Elgot–Trakhtenbrot, these are precisely the MSO-definable unary
//! queries `φ(x)` on strings — the hypothesis class of \[21\].
//!
//! Naively, classifying one position costs a full `O(n)` run. The
//! preprocessing model instead computes, once per word,
//!
//! * `forward[i]` — the state of `A` after reading the unmarked prefix
//!   `w[0..i)`, and
//! * `accept_from[i][q]` — whether reading the unmarked suffix `w[i..)`
//!   from state `q` ends in an accepting state,
//!
//! in `O(n·|Q|)` total; afterwards *every* position classifies in `O(1)`:
//! take the marked transition out of `forward[i]` and look the remainder
//! up in `accept_from[i+1]`. This is the "preprocess once, answer each
//! example in constant time" regime that makes learning sublinear per
//! example (experiment E15 measures exactly this crossover).

use crate::dfa::Dfa;
use crate::word::Word;

/// Encode a `(letter, marked)` pair into the marked alphabet.
#[inline]
pub fn marked_letter(letter: u8, marked: bool) -> u8 {
    letter * 2 + u8::from(marked)
}

/// A unary query given by a DFA over the marked alphabet `Σ × {0,1}`
/// (size `2·σ`, layout per [`marked_letter`]).
#[derive(Clone, Debug)]
pub struct PositionQuery {
    /// Human-readable name (for reports).
    pub name: String,
    automaton: Dfa,
    sigma: u8,
}

impl PositionQuery {
    /// Wrap a marked-alphabet DFA.
    ///
    /// # Panics
    /// Panics unless the automaton's alphabet is exactly `2·sigma`.
    pub fn new(name: impl Into<String>, automaton: Dfa, sigma: u8) -> Self {
        assert_eq!(
            automaton.sigma(),
            2 * sigma as usize,
            "position queries run over the marked alphabet Σ × {{0,1}}"
        );
        Self {
            name: name.into(),
            automaton,
            sigma,
        }
    }

    /// The underlying automaton.
    pub fn automaton(&self) -> &Dfa {
        &self.automaton
    }

    /// Alphabet size of the words this query applies to.
    pub fn sigma(&self) -> u8 {
        self.sigma
    }

    /// Naive `O(n)` classification of one position.
    ///
    /// # Panics
    /// Panics if the word's alphabet mismatches or `pos` is out of range.
    pub fn classify_naive(&self, w: &Word, pos: usize) -> bool {
        assert_eq!(w.sigma(), self.sigma);
        assert!(pos < w.len());
        let mut state = self.automaton.start();
        for (i, &l) in w.letters().iter().enumerate() {
            state = self.automaton.step(state, marked_letter(l, i == pos));
        }
        self.automaton.accepts_state(state)
    }

    /// Run the preprocessing phase on a word.
    pub fn preprocess<'q, 'w>(&'q self, w: &'w Word) -> Preprocessed<'q, 'w> {
        assert_eq!(w.sigma(), self.sigma);
        let n = w.len();
        let states = self.automaton.num_states();
        // forward[i]: state after unmarked prefix w[0..i).
        let mut forward = Vec::with_capacity(n + 1);
        let mut s = self.automaton.start();
        forward.push(s);
        for &l in w.letters() {
            s = self.automaton.step(s, marked_letter(l, false));
            forward.push(s);
        }
        // accept_from[i][q]: does the unmarked suffix w[i..) lead q to
        // acceptance? Filled back to front.
        let mut accept_from = vec![vec![false; states]; n + 1];
        for (q, cell) in accept_from[n].iter_mut().enumerate() {
            *cell = self.automaton.accepts_state(q as u32);
        }
        for i in (0..n).rev() {
            let a = marked_letter(w.letter(i), false);
            for q in 0..states {
                let succ = self.automaton.step(q as u32, a);
                accept_from[i][q] = accept_from[i + 1][succ as usize];
            }
        }
        Preprocessed {
            query: self,
            word: w,
            forward,
            accept_from,
        }
    }
}

/// The preprocessed tables for one `(query, word)` pair; classification is
/// `O(1)` per position.
pub struct Preprocessed<'q, 'w> {
    query: &'q PositionQuery,
    word: &'w Word,
    forward: Vec<u32>,
    accept_from: Vec<Vec<bool>>,
}

impl Preprocessed<'_, '_> {
    /// Classify a position in constant time.
    ///
    /// # Panics
    /// Panics if `pos` is out of range.
    pub fn classify(&self, pos: usize) -> bool {
        assert!(pos < self.word.len());
        let before = self.forward[pos];
        let after = self
            .query
            .automaton
            .step(before, marked_letter(self.word.letter(pos), true));
        self.accept_from[pos + 1][after as usize]
    }

    /// All selected positions.
    pub fn answer(&self) -> Vec<usize> {
        (0..self.word.len()).filter(|&i| self.classify(i)).collect()
    }
}

// ---------------------------------------------------------------------------
// A standard family of queries used as hypothesis classes and in tests
// ---------------------------------------------------------------------------

/// `φ(x)` = "the letter at x is `letter`".
pub fn letter_is(sigma: u8, letter: u8) -> PositionQuery {
    // Accept iff the marked position carries (letter, 1).
    let s2 = 2 * sigma as usize;
    // States: 0 = not seen mark, 1 = mark seen with target letter,
    // 2 = mark seen with other letter.
    let mut d0: Vec<u32> = vec![0; s2];
    for l in 0..sigma {
        d0[marked_letter(l, true) as usize] = if l == letter { 1 } else { 2 };
    }
    let d1: Vec<u32> = vec![1; s2];
    let d2: Vec<u32> = vec![2; s2];
    PositionQuery::new(
        format!("letter_is({})", (b'a' + letter) as char),
        Dfa::new(vec![d0, d1, d2], vec![false, true, false], 0),
        sigma,
    )
}

/// `φ(x)` = "the next position exists and carries `letter`".
pub fn next_is(sigma: u8, letter: u8) -> PositionQuery {
    let s2 = 2 * sigma as usize;
    // 0 = before mark, 1 = just after mark, 2 = accept-sink, 3 = reject-sink.
    let mut d0: Vec<u32> = vec![0; s2];
    for l in 0..sigma {
        d0[marked_letter(l, true) as usize] = 1;
    }
    let mut d1: Vec<u32> = vec![3; s2];
    for l in 0..sigma {
        d1[marked_letter(l, false) as usize] = if l == letter { 2 } else { 3 };
    }
    let d2: Vec<u32> = vec![2; s2];
    let d3: Vec<u32> = vec![3; s2];
    PositionQuery::new(
        format!("next_is({})", (b'a' + letter) as char),
        Dfa::new(vec![d0, d1, d2, d3], vec![false, false, true, false], 0),
        sigma,
    )
}

/// `φ(x)` = "some `letter` occurs (strictly) before x" — a genuinely
/// non-local MSO/FO query on strings.
pub fn before_exists(sigma: u8, letter: u8) -> PositionQuery {
    let s2 = 2 * sigma as usize;
    // 0 = not seen target & no mark, 1 = seen target & no mark,
    // 2 = marked-after-seen (accept sink), 3 = marked-without (reject sink).
    let mut d0: Vec<u32> = vec![0; s2];
    d0[marked_letter(letter, false) as usize] = 1;
    for l in 0..sigma {
        d0[marked_letter(l, true) as usize] = 3;
    }
    let mut d1: Vec<u32> = vec![1; s2];
    for l in 0..sigma {
        d1[marked_letter(l, true) as usize] = 2;
    }
    let d2: Vec<u32> = vec![2; s2];
    let d3: Vec<u32> = vec![3; s2];
    PositionQuery::new(
        format!("before_exists({})", (b'a' + letter) as char),
        Dfa::new(vec![d0, d1, d2, d3], vec![false, false, true, false], 0),
        sigma,
    )
}

/// `φ(x)` = "the number of `letter`s strictly before x is even" — MSO but
/// **not** FO-definable (modular counting): the class properly extends
/// first-order queries, which is the point of going to MSO on strings.
pub fn even_before(sigma: u8, letter: u8) -> PositionQuery {
    let s2 = 2 * sigma as usize;
    // 0/1 = parity before the mark; 2 = accepted sink; 3 = rejected sink.
    let mut d0: Vec<u32> = vec![0; s2];
    d0[marked_letter(letter, false) as usize] = 1;
    for l in 0..sigma {
        d0[marked_letter(l, true) as usize] = 2;
    }
    let mut d1: Vec<u32> = vec![1; s2];
    d1[marked_letter(letter, false) as usize] = 0;
    for l in 0..sigma {
        d1[marked_letter(l, true) as usize] = 3;
    }
    let d2: Vec<u32> = vec![2; s2];
    let d3: Vec<u32> = vec![3; s2];
    PositionQuery::new(
        format!("even_before({})", (b'a' + letter) as char),
        Dfa::new(vec![d0, d1, d2, d3], vec![false, false, true, false], 0),
        sigma,
    )
}

/// The standard candidate class used by the learner and experiments.
pub fn standard_class(sigma: u8) -> Vec<PositionQuery> {
    let mut out = Vec::new();
    for l in 0..sigma {
        out.push(letter_is(sigma, l));
        out.push(next_is(sigma, l));
        out.push(before_exists(sigma, l));
        out.push(even_before(sigma, l));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn letter_is_selects_right_positions() {
        let w = Word::from_ascii("abab", 2);
        let q = letter_is(2, 1);
        let pre = q.preprocess(&w);
        assert_eq!(pre.answer(), vec![1, 3]);
    }

    #[test]
    fn preprocessed_matches_naive_everywhere() {
        let w = Word::random(60, 2, 9);
        for q in standard_class(2) {
            let pre = q.preprocess(&w);
            for i in 0..w.len() {
                assert_eq!(
                    pre.classify(i),
                    q.classify_naive(&w, i),
                    "{} at {i} on {w}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn before_exists_semantics() {
        let w = Word::from_ascii("babab", 2);
        let q = before_exists(2, 1); // some 'b' strictly before x
        let pre = q.preprocess(&w);
        assert_eq!(pre.answer(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn even_before_is_modular() {
        let w = Word::from_ascii("bbbb", 2);
        let q = even_before(2, 1);
        let pre = q.preprocess(&w);
        // #b before positions 0,1,2,3 = 0,1,2,3 → even at 0 and 2.
        assert_eq!(pre.answer(), vec![0, 2]);
    }

    #[test]
    fn next_is_semantics() {
        let w = Word::from_ascii("aab", 2);
        let q = next_is(2, 1);
        let pre = q.preprocess(&w);
        assert_eq!(pre.answer(), vec![1]); // position 1 precedes the 'b'
    }
}
