//! MSO-definable position queries on strings, with the preprocessing
//! model of Grohe–Löding–Ritzert (ALT 2017) — the paper's reference \[21\].
//!
//! Sublinear-time learning of first-order queries is impossible once
//! degrees are unbounded, so \[21\] proposes a two-phase model: an `O(n)`
//! *preprocessing* pass over the background structure (before any labelled
//! example arrives), after which each example is evaluated in constant
//! time. The result is proven for monadic second-order logic on strings —
//! which the paper's conclusion singles out as the model to extend.
//!
//! This crate implements that model:
//!
//! * strings as logical structures, and their bridge into the workspace's
//!   coloured-path encoding so the FO learners apply to them too
//!   ([`word`]);
//! * a deterministic-finite-automaton substrate with products,
//!   complement, partition-refinement minimisation and equivalence
//!   checking ([`dfa`]);
//! * *regular position queries*: unary queries `w ↦ {positions}` given by
//!   a DFA over the marked alphabet `Σ × {0,1}`; by the
//!   Büchi–Elgot–Trakhtenbrot theorem these are **exactly** the
//!   MSO-definable unary queries on strings, so representing hypotheses
//!   as automata (instead of MSO syntax) is an equivalence, not a
//!   shortcut ([`query`]);
//! * the preprocessing scheme: `O(n·|Q|)` forward-state and
//!   suffix-acceptance tables, after which each position classifies in
//!   `O(1)` ([`query::Preprocessed`]);
//! * ERM over a finite class of regular queries, in the two-phase model
//!   ([`learn`]);
//! * Angluin's L\* exact active learner for regular languages — the
//!   *active* counterpart the paper's related work contrasts the
//!   statistical setting against ([`lstar`]).

pub mod dfa;
pub mod learn;
pub mod lstar;
pub mod query;
pub mod word;

pub use dfa::Dfa;
pub use query::{PositionQuery, Preprocessed};
pub use word::Word;
