//! E15 — the preprocessing model of \[21\] (Grohe–Löding–Ritzert):
//! MSO-definable position queries on strings.
//!
//! Claim: after an `O(n·|Q|)` preprocessing pass over the background
//! string, *each labelled example evaluates in O(1)* — so for m examples
//! the two-phase ERM costs `O(n + m)` against the naive `O(n · m)`; the
//! crossover appears as a flat per-example cost while n grows.

use folearn_bench::{banner, cells, loglog_slope, ms, timed, verdict, Table};
use folearn_strings::learn::{PosExample, StringLearner};
use folearn_strings::query::{before_exists, standard_class};
use folearn_strings::Word;

fn main() {
    banner(
        "E15 ([21]: learning MSO on strings with preprocessing)",
        "preprocessing is linear in n; afterwards each example costs O(1), \
         so two-phase ERM beats naive O(n·m) evaluation",
    );

    let sigma = 2u8;
    let class = standard_class(sigma);
    let m = 400usize;
    let mut table = Table::new(&[
        "n", "pre-ms", "erm-ms", "naive-ms", "err", "per-example-us",
    ]);
    let mut pre_pts = Vec::new();
    let mut per_example_us = Vec::new();
    let mut speedups = Vec::new();
    let mut all_zero = true;
    for n in [2_000usize, 8_000, 32_000, 128_000] {
        let w = Word::random(n, sigma, 13);
        let target = before_exists(sigma, 1);
        let target_pre = target.preprocess(&w);
        let examples: Vec<PosExample> = (0..m)
            .map(|i| {
                let pos = (i * 97) % n;
                PosExample {
                    pos,
                    label: target_pre.classify(pos),
                }
            })
            .collect();
        let (learner, pre_t) = timed(|| StringLearner::preprocess(&w, &class));
        let (result, erm_t) = timed(|| learner.erm(&examples));
        all_zero &= result.error == 0.0;
        // Naive baseline: full O(n) automaton run per (example, candidate).
        let (_, naive_t) = timed(|| {
            let mut wrong = 0usize;
            for q in &class {
                for e in &examples {
                    if q.classify_naive(&w, e.pos) != e.label {
                        wrong += 1;
                    }
                }
            }
            wrong
        });
        pre_pts.push((n as f64, pre_t.as_secs_f64()));
        per_example_us.push(erm_t.as_secs_f64() * 1e6 / m as f64);
        speedups.push(naive_t.as_secs_f64() / (pre_t + erm_t).as_secs_f64());
        table.row(cells!(
            n,
            ms(pre_t),
            ms(erm_t),
            ms(naive_t),
            format!("{:.3}", result.error),
            format!("{:.2}", erm_t.as_secs_f64() * 1e6 / m as f64)
        ));
    }
    table.print();
    println!();
    println!(
        "preprocessing log-log slope: {:.2} (≈1 = linear in n); \
         per-example cost: {:.2}–{:.2} µs across a 64× n range; \
         two-phase speedup over naive: {:.0}×–{:.0}×",
        loglog_slope(&pre_pts),
        per_example_us.iter().cloned().fold(f64::INFINITY, f64::min),
        per_example_us.iter().cloned().fold(0.0, f64::max),
        speedups.iter().cloned().fold(f64::INFINITY, f64::min),
        speedups.iter().cloned().fold(0.0, f64::max),
    );
    // Absolute ERM times here are microseconds, so slopes are noise; the
    // claim is "per-example cost bounded by a constant while n grows 64×"
    // plus a widening gap over the naive O(n·m) evaluation.
    let ok = all_zero
        && loglog_slope(&pre_pts) < 1.4
        && per_example_us.iter().all(|&c| c < 5.0)
        && speedups.last().copied().unwrap_or(0.0)
            > speedups.first().copied().unwrap_or(f64::INFINITY) / 2.0
        && speedups.iter().all(|&s| s > 5.0);
    verdict(
        ok,
        "the example-evaluation phase is flat in n while preprocessing is \
         linear — the [21] regime, on an MSO query (even/parity-free class \
         incl. a non-FO modular query)",
    );
}
