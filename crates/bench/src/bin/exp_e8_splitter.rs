//! E8 — Fact 4 (the splitter game characterises nowhere-denseness).
//!
//! Claim: on nowhere dense classes Splitter wins the `(r, s)` game with
//! `s` independent of `n` (and within the certified bounds for our
//! strategies); on cliques the required round count grows linearly in `n`.

use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_graph::splitter::{
    play_game, BoundedDegreeSplitter, ForestSplitter, GreedySplitter, MaxBallConnector,
    SplitterStrategy,
};
use folearn_graph::{generators, Graph, Vocabulary};

fn run(
    table: &mut Table,
    name: &str,
    g: &Graph,
    splitter: &mut dyn SplitterStrategy,
    r: usize,
) -> usize {
    let mut connector = MaxBallConnector;
    let cap = g.num_vertices() + 5;
    let (result, elapsed) = timed(|| play_game(g, r, splitter, &mut connector, cap));
    let bound = splitter
        .round_bound(r)
        .map_or("—".into(), |b| b.to_string());
    table.row(cells!(
        name,
        g.num_vertices(),
        r,
        result.rounds,
        bound,
        result.splitter_won,
        ms(elapsed)
    ));
    result.rounds
}

fn main() {
    banner(
        "E8 (Fact 4: splitter game)",
        "s(r) independent of n on nowhere dense classes; ~n rounds on \
         cliques — the exact boundary where Theorem 2 stops applying",
    );

    let mut table = Table::new(&["class", "n", "r", "rounds", "bound", "won", "time-ms"]);

    let mut tree_rounds = Vec::new();
    for r in [1usize, 2, 3] {
        for n in [100usize, 400, 1600] {
            let g = generators::random_tree(n, Vocabulary::empty(), 5);
            tree_rounds.push((n, run(&mut table, "forest", &g, &mut ForestSplitter, r)));
        }
    }
    for n in [100usize, 400] {
        let g = generators::bounded_degree_random(n, 3, 1.0, Vocabulary::empty(), 9);
        run(
            &mut table,
            "max-degree-3",
            &g,
            &mut BoundedDegreeSplitter { degree: 3 },
            2,
        );
    }
    for side in [8usize, 16, 32] {
        let g = generators::grid(side, side, Vocabulary::empty());
        run(&mut table, "grid", &g, &mut GreedySplitter, 2);
    }
    let mut clique_rounds = Vec::new();
    for n in [8usize, 16, 32] {
        let g = generators::clique(n, Vocabulary::empty());
        clique_rounds.push((n, run(&mut table, "clique", &g, &mut GreedySplitter, 2)));
    }
    table.print();

    // Flatness on trees: rounds at n=1600 no worse than at n=100 (+1).
    let flat = tree_rounds
        .chunks(3)
        .all(|c| c[2].1 <= c[0].1 + 1);
    // Growth on cliques: rounds scale with n.
    let grows = clique_rounds[2].1 >= 2 * clique_rounds[0].1;
    verdict(
        flat && grows,
        "round counts are flat in n on forests/bounded-degree/grids and \
         linear in n on cliques",
    );
}
