//! E1 — Theorem 1 / Lemma 7 (and E12 — Remark 10).
//!
//! Claim: FO model checking is decidable with polynomially many ERM-oracle
//! calls, the Ramsey-pruned representative sets `|T|` stay bounded as `n`
//! grows, and correctness survives an oracle that answers arbitrarily on
//! non-realisable instances.

use folearn_bench::{banner, cells, ms, timed, verdict, Json, Table};
use folearn_hardness::oracle::AdversarialOnUnrealizable;
use folearn_hardness::{model_check_via_erm, BruteForceOracle};
use folearn_logic::{eval, parse};

fn main() {
    banner(
        "E1 (Theorem 1 / Lemma 7) + E12 (Remark 10)",
        "FO-MC reduces to (L,Q)-FO-ERM: O(n^2) oracle calls per quantifier, \
         |T| bounded independently of n; correctness tolerates corrupted \
         answers on non-realisable instances",
    );

    let sentences = [
        ("exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)", 2usize),
        ("forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)", 2),
    ];

    let mut table = Table::new(&[
        "sentence#", "n", "direct", "reduced", "calls", "|T|max", "realisable%",
        "adversarial-ok", "time-ms",
    ]);
    let mut all_ok = true;
    let mut reports: Vec<Json> = Vec::new();
    let mut tmax_per_sentence: Vec<Vec<usize>> = vec![Vec::new(); sentences.len()];
    for (si, (s, _qr)) in sentences.iter().enumerate() {
        for n in [6usize, 8, 10, 12] {
            let g = folearn_bench::red_tree(n, 3, 7);
            let phi = parse(s, g.vocab()).unwrap();
            let direct = eval::models(&g, &phi);
            let mut oracle = BruteForceOracle::new();
            let (report, elapsed) = timed(|| model_check_via_erm(&g, &phi, &mut oracle));
            let tmax = report
                .representative_set_sizes
                .iter()
                .max()
                .copied()
                .unwrap_or(0);
            tmax_per_sentence[si].push(tmax);
            // E12: adversarial oracle.
            let mut adv = AdversarialOnUnrealizable::new(BruteForceOracle::new());
            let adv_report = model_check_via_erm(&g, &phi, &mut adv);
            let adv_ok = adv_report.result == direct;
            let ok = report.result == direct && adv_ok;
            all_ok &= ok;
            table.row(cells!(
                si,
                n,
                direct,
                report.result,
                report.oracle_calls,
                tmax,
                format!(
                    "{:.0}",
                    100.0 * report.realizable_calls as f64
                        / report.oracle_calls.max(1) as f64
                ),
                adv_ok,
                ms(elapsed)
            ));
            // The machine-readable record reuses the report's own JSON
            // rendering instead of re-formatting fields by hand.
            let mut row = vec![
                ("sentence".to_string(), Json::int(si)),
                ("n".to_string(), Json::int(n)),
            ];
            if let Json::Obj(pairs) = report.to_json() {
                row.extend(pairs);
            }
            reports.push(Json::Obj(row));
        }
    }
    table.print();
    println!();
    println!("reduction reports (JSONL):");
    for r in &reports {
        println!("{}", r.render());
    }

    let bounded = tmax_per_sentence.iter().all(|v| {
        let first = v[0];
        v.iter().all(|&t| t <= first + 3)
    });
    verdict(
        all_ok && bounded,
        "reduction == direct model checking on every instance (including \
         with the Remark 10 adversarial oracle), and |T| does not grow \
         with n",
    );
}
