//! E7 — Section 3 + Adler–Adler: bounded VC dimension on nowhere dense
//! classes.
//!
//! Claim: the VC dimension of `H_{k,ℓ,q}(G)` is uniformly bounded on
//! nowhere dense classes (flat as `n` grows on paths/trees) and grows
//! with the richness of the class (extra parameters / colours add
//! capacity).

use folearn::shared_arena;
use folearn::vc::vc_dimension;
use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_graph::{generators, Vocabulary};

fn main() {
    banner(
        "E7 (Section 3 / Adler–Adler)",
        "VC(H_{k,ℓ,q}(G)) is flat in n on nowhere dense classes and \
         increases with ℓ",
    );

    let mut table = Table::new(&["graph", "n", "ell", "q", "VC(≤cap 3)", "time-ms"]);
    let mut path_vcs_l0 = Vec::new();
    let mut path_vcs_l1 = Vec::new();
    for n in [6usize, 8, 10] {
        for (ell, q) in [(0usize, 2usize), (1, 1)] {
            let g = generators::path(n, Vocabulary::empty());
            let arena = shared_arena(&g);
            let (vc, t) = timed(|| vc_dimension(&g, 1, ell, q, 3, &arena));
            if ell == 0 {
                path_vcs_l0.push(vc);
            } else {
                path_vcs_l1.push(vc);
            }
            table.row(cells!("path", n, ell, q, vc, ms(t)));
        }
    }
    for seed in [1u64, 2] {
        let g = generators::random_tree(8, Vocabulary::empty(), seed);
        let arena = shared_arena(&g);
        let (vc, t) = timed(|| vc_dimension(&g, 1, 1, 1, 3, &arena));
        table.row(cells!(format!("tree(seed={seed})"), 8, 1, 1, vc, ms(t)));
    }
    // Dense control: cliques have a single type class, so ℓ = 0 capacity
    // collapses; parameters restore some.
    for n in [5usize, 7] {
        let g = generators::clique(n, Vocabulary::empty());
        let arena = shared_arena(&g);
        let (vc0, t0) = timed(|| vc_dimension(&g, 1, 0, 2, 3, &arena));
        table.row(cells!("clique", n, 0, 2, vc0, ms(t0)));
        let (vc1, t1) = timed(|| vc_dimension(&g, 1, 1, 1, 3, &arena));
        table.row(cells!("clique", n, 1, 1, vc1, ms(t1)));
    }
    table.print();

    let flat0 = path_vcs_l0.windows(2).all(|w| w[0] == w[1]);
    let flat1 = path_vcs_l1.windows(2).all(|w| w[0] == w[1]);
    let capacity = path_vcs_l1[0] >= path_vcs_l0[0];
    verdict(
        flat0 && flat1 && capacity,
        "VC stays constant as n grows on paths (uniform bound) and \
         parameters add capacity",
    );
}
