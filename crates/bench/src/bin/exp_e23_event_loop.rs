//! E23 — connection scaling: the event-driven core vs thread-per-conn.
//!
//! Claim: rewriting the daemon around a nonblocking readiness loop with
//! pipelined framing and a sharded cache fixes connection-scaling
//! collapse — the pipelined load generator sustains ≥ 1k concurrent
//! connections against the event core with zero unrecovered errors, and
//! at that concurrency the event core's throughput strictly beats the
//! thread-per-connection baseline serving the identical workload.
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_event_loop.json` — or a path given as the first CLI argument.

use std::net::SocketAddr;
use std::time::Duration;

use folearn_bench::{banner, cells, red_tree, verdict, write_json_file, Json, Table};
use folearn_graph::io;
use folearn_server::{
    run_load, start, ClientConfig, CoreMode, LoadReport, LoadgenConfig, ServerConfig,
};

/// The high-concurrency point the scaling claim is judged at.
const HIGH_CONCURRENCY: usize = 1024;
/// Requests per connection (a `register` rides along as one more).
const REQUESTS_PER_CONN: usize = 30;
/// Pipelined frames in flight per connection.
const WINDOW: usize = 8;

fn core_name(core: CoreMode) -> &'static str {
    match core {
        CoreMode::Threaded => "thread",
        CoreMode::EventLoop => "event",
    }
}

/// One measured run: a fresh daemon on `core`, hammered by the
/// pipelined load generator at `connections`.
struct Run {
    core: &'static str,
    connections: usize,
    report: LoadReport,
}

impl Run {
    /// Errors the run could not retry its way out of: server-side error
    /// replies plus workers that died early.
    fn unrecovered(&self) -> usize {
        self.report.errors + self.report.worker_errors.len()
    }
}

fn measure(core: CoreMode, connections: usize, graph_text: &str) -> Run {
    let handle = start(&ServerConfig {
        core,
        max_connections: 2 * HIGH_CONCURRENCY,
        cache_capacity: 4 * HIGH_CONCURRENCY,
        ..ServerConfig::default()
    })
    .expect("daemon starts");
    let addr: SocketAddr = handle.addr();
    let config = LoadgenConfig {
        connections,
        requests_per_conn: REQUESTS_PER_CONN,
        seed: 23,
        sample_pool: 1,
        ell: 1,
        q: 1,
        pipeline: WINDOW,
        client: ClientConfig::with_deadline(Duration::from_secs(120)),
        ..LoadgenConfig::default()
    };
    let report = run_load(addr, graph_text, &config);
    handle.shutdown();
    Run {
        core: core_name(core),
        connections,
        report,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_event_loop.json".to_string());
    banner(
        "E23 (event-loop connection scaling)",
        "the nonblocking event core sustains ≥1k concurrent pipelined \
         connections with zero unrecovered errors and strictly \
         out-throughputs the thread-per-connection baseline there",
    );

    let g = red_tree(32, 3, 7);
    let graph_text = io::to_text(&g);

    let mut table = Table::new(&[
        "core", "conns", "requests", "unrecovered", "reconnects", "req/s", "cached", "fresh",
        "solve-p50-us",
    ]);
    let mut runs = Vec::new();
    let mut rows = Vec::new();
    for connections in [128usize, HIGH_CONCURRENCY] {
        for core in [CoreMode::Threaded, CoreMode::EventLoop] {
            let run = measure(core, connections, &graph_text);
            let solve_p50 = run
                .report
                .ops
                .iter()
                .find(|(op, _)| op == "solve")
                .map(|(_, s)| s.quantile_us(0.50))
                .unwrap_or(0);
            table.row(cells!(
                run.core,
                run.connections,
                run.report.requests,
                run.unrecovered(),
                run.report.reconnects,
                format!("{:.0}", run.report.throughput()),
                run.report.cached_solves,
                run.report.fresh_solves,
                solve_p50
            ));
            let mut row = vec![
                ("core".to_string(), Json::str(run.core)),
                ("connections".to_string(), Json::int(run.connections)),
                (
                    "unrecovered_errors".to_string(),
                    Json::int(run.unrecovered()),
                ),
            ];
            if let Json::Obj(pairs) = run.report.to_json() {
                row.extend(pairs);
            }
            rows.push(Json::Obj(row));
            runs.push(run);
        }
    }
    table.print();
    println!();

    let rps = |core: &str, conns: usize| {
        runs.iter()
            .find(|r| r.core == core && r.connections == conns)
            .map(|r| r.report.throughput())
            .unwrap_or(0.0)
    };
    let event_high = rps("event", HIGH_CONCURRENCY);
    let threaded_high = rps("thread", HIGH_CONCURRENCY);
    let unrecovered: usize = runs.iter().map(Run::unrecovered).sum();
    let expected_high = HIGH_CONCURRENCY * (REQUESTS_PER_CONN + 1);
    let sustained = runs
        .iter()
        .filter(|r| r.connections == HIGH_CONCURRENCY)
        .all(|r| r.report.requests == expected_high);
    println!(
        "high concurrency ({HIGH_CONCURRENCY} conns): event {event_high:.0} req/s \
         vs thread {threaded_high:.0} req/s"
    );

    let json = Json::obj([
        ("experiment", Json::str("E23")),
        ("graph_vertices", Json::int(g.num_vertices())),
        ("pipeline_window", Json::int(WINDOW)),
        ("requests_per_conn", Json::int(REQUESTS_PER_CONN)),
        ("high_concurrency", Json::int(HIGH_CONCURRENCY)),
        ("event_rps_high", Json::Num(event_high.round())),
        ("threaded_rps_high", Json::Num(threaded_high.round())),
        ("unrecovered_errors", Json::int(unrecovered)),
        ("sustained_all_requests", Json::Bool(sustained)),
        ("runs", Json::Arr(rows)),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let ok = sustained && unrecovered == 0 && event_high > threaded_high;
    verdict(
        ok,
        "≥1k concurrent pipelined connections complete every request with \
         zero unrecovered errors and the event core strictly beats the \
         thread-per-connection baseline",
    );
    if !ok {
        std::process::exit(1);
    }
}
