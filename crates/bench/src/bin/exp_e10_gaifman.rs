//! E10 — Fact 5 (Gaifman locality).
//!
//! Claim: at radius `r(q)` local-type equality implies global-type
//! equality, while *smaller* radii genuinely break the implication — the
//! exponential radius is necessary, not an artefact of our encoding.

use std::sync::Arc;

use folearn_bench::{banner, cells, verdict, Table};
use folearn_graph::{generators, ColorId, GraphBuilder, Vocabulary, V};
use folearn_types::{compute, gaifman_radius, local_type, TypeArena};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Count Fact 5 violations: same-ltp pairs with different tp.
fn violations(g: &folearn_graph::Graph, q: usize, r: usize) -> (usize, usize) {
    let mut arena = TypeArena::new(Arc::clone(g.vocab()));
    let verts: Vec<V> = g.vertices().collect();
    let mut same_ltp = 0usize;
    let mut bad = 0usize;
    for (i, &u) in verts.iter().enumerate() {
        for &v in &verts[i + 1..] {
            let lu = local_type(g, &mut arena, &[u], q, r);
            let lv = local_type(g, &mut arena, &[v], q, r);
            if lu == lv {
                same_ltp += 1;
                if compute::type_of(g, &mut arena, &[u], q)
                    != compute::type_of(g, &mut arena, &[v], q)
                {
                    bad += 1;
                }
            }
        }
    }
    (same_ltp, bad)
}

fn random_colored_graph(n: usize, seed: u64) -> folearn_graph::Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = Vocabulary::new(["Red"]);
    let mut b = GraphBuilder::with_vertices(vocab, n);
    for _ in 0..(n + n / 2) {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_edge(V(u), V(v));
        }
    }
    for i in 0..n {
        if rng.random_bool(0.4) {
            b.set_color(V(i as u32), ColorId(0));
        }
    }
    b.build()
}

fn main() {
    banner(
        "E10 (Fact 5: Gaifman locality)",
        "ltp_{q,r(q)} equality ⇒ tp_q equality; small radii violate it \
         (incl. the minimal 4-vertex counterexample at q=1, r≤2)",
    );

    // The hand-built counterexample from the `gaifman_radius` docs.
    let vocab = Vocabulary::new(["Red"]);
    let mut b = GraphBuilder::with_vertices(vocab, 4);
    // u=0, y=1(red), v=2, x=3(red); edges u–y, v–y, v–x.
    b.add_edge(V(0), V(1));
    b.add_edge(V(2), V(1));
    b.add_edge(V(2), V(3));
    b.set_color(V(1), ColorId(0));
    b.set_color(V(3), ColorId(0));
    let counterexample = b.build();

    let mut table = Table::new(&["graph", "n", "q", "r", "same-ltp pairs", "violations"]);
    let mut small_breaks = false;
    let mut big_holds = true;
    for r in [1usize, 2, 3, 4] {
        let (pairs, bad) = violations(&counterexample, 1, r);
        if r <= 2 && bad > 0 {
            small_breaks = true;
        }
        if r >= 4 && bad > 0 {
            big_holds = false;
        }
        table.row(cells!("counterexample", 4, 1, r, pairs, bad));
    }
    for seed in 0..4u64 {
        let g = random_colored_graph(10, seed);
        for q in [1usize, 2] {
            let r = gaifman_radius(q);
            let (pairs, bad) = violations(&g, q, r);
            big_holds &= bad == 0;
            table.row(cells!(format!("random(seed={seed})"), 10, q, r, pairs, bad));
            // A deliberately tiny radius for contrast.
            let (pairs0, bad0) = violations(&g, q, 0);
            table.row(cells!(format!("random(seed={seed})"), 10, q, 0, pairs0, bad0));
        }
    }
    for n in [12usize, 20] {
        let g = generators::random_tree(n, Vocabulary::new(["Red"]), 3);
        let g = generators::periodically_colored(&g, ColorId(0), 3);
        let r = gaifman_radius(1);
        let (pairs, bad) = violations(&g, 1, r);
        big_holds &= bad == 0;
        table.row(cells!("red-tree", n, 1, r, pairs, bad));
    }
    table.print();
    verdict(
        small_breaks && big_holds,
        "zero violations at r = r(q) = 4^q across all instances; the \
         4-vertex counterexample violates Fact 5 at r ≤ 2, so the \
         exponential radius is required",
    );
}
