//! E9 — Section 2 (finiteness of q-types).
//!
//! Claim: the number of distinct `q`-types of `k`-tuples realised in a
//! graph is bounded by `f(τ, k, q)` *independently of `n`* — the
//! finiteness underlying `|H_{k,ℓ,q}(G)| = f(k,ℓ,q)·n^ℓ` — while the
//! census cost itself grows with `n` (types are finite, computing them is
//! not free).

use folearn::shared_arena;
use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_types::census;

fn main() {
    banner(
        "E9 (Section 2: type finiteness)",
        "#distinct q-types stabilises as n grows (per class of graphs), \
         for unary and binary tuples alike",
    );

    let mut table = Table::new(&[
        "graph", "n", "k", "q", "#types", "arena-size", "time-ms",
    ]);
    let mut stable = true;
    for (k, q) in [(1usize, 1usize), (1, 2), (2, 1)] {
        let mut counts = Vec::new();
        // Lengths ≡ 2 (mod 3) so the stripe pattern meets both path ends
        // identically — otherwise the boundary colouring itself changes
        // with n and the census measures that, not type growth.
        for n in [8usize, 17, 29] {
            let g = folearn_bench::red_path(n, 3);
            let arena = shared_arena(&g);
            let (count, t) = timed(|| {
                let mut a = arena.lock();
                census::count_types(&g, &mut a, k, q)
            });
            counts.push(count);
            let arena_size = arena.lock().len();
            table.row(cells!("red-path", n, k, q, count, arena_size, ms(t)));
        }
        // Stabilisation: the last two censuses agree.
        stable &= counts[counts.len() - 1] == counts[counts.len() - 2];
    }
    // Trees: same stabilisation within a class.
    for n in [10usize, 20, 40] {
        let g = folearn_bench::red_tree(n, 3, 17);
        let arena = shared_arena(&g);
        let (count, t) = timed(|| {
            let mut a = arena.lock();
            census::count_types(&g, &mut a, 1, 1)
        });
        let arena_size = arena.lock().len();
        table.row(cells!("red-tree", n, 1, 1, count, arena_size, ms(t)));
    }
    table.print();
    verdict(
        stable,
        "type counts stabilise with n on paths for (k,q) ∈ \
         {(1,1),(1,2),(2,1)} — the f(τ,k,q) bound is visible",
    );
}
