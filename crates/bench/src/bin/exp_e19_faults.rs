//! E19 — fault tolerance: the Lemma 7 reduction over an unreliable wire.
//!
//! Claim: with client deadlines and a capped-backoff retry policy, the
//! `RemoteOracle` reduction driven through a deterministic fault-injecting
//! proxy (drops, delays, truncations, garbled bytes) completes under every
//! fault mode with verdicts, oracle-call counts, and representative-set
//! traces *bit-identical* to the in-process `BruteForceOracle` run, and a
//! concurrent loadgen mix through the same proxy finishes with zero
//! unrecovered errors. Retry-safety is idempotence: a re-sent solve is
//! answered by the deterministic engine (or its result cache) with the
//! same outcome, so no retry can perturb the Ramsey grouping.
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_fault.json` — or a path given as the first CLI argument.

use std::time::{Duration, Instant};

use folearn_bench::{banner, cells, verdict, write_json_file, Json, Table};
use folearn_graph::{generators, io, ColorId, Graph, Vocabulary};
use folearn_hardness::oracle::{BruteForceOracle, ErmOracle, RemoteOracle};
use folearn_hardness::reduction::{model_check_via_erm, ReductionReport};
use folearn_logic::parse;
use folearn_server::{
    run_load, start, ChaosConfig, ChaosProxy, ClientConfig, Direction,
    FaultKind, LoadgenConfig, RetryPolicy, ServerConfig,
};

/// Read deadline on every faulted client; a dropped or over-delayed frame
/// costs exactly this long before the retry fires.
const DEADLINE: Duration = Duration::from_millis(250);

fn colored_path(n: usize, stride: usize) -> Graph {
    let g = generators::path(n, Vocabulary::new(["Red"]));
    generators::periodically_colored(&g, ColorId(0), stride)
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 12,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(40),
        seed,
    }
}

fn reports_match(a: &ReductionReport, b: &ReductionReport) -> bool {
    a.result == b.result
        && a.oracle_calls == b.oracle_calls
        && a.realizable_calls == b.realizable_calls
        && a.representative_set_sizes == b.representative_set_sizes
        && a.max_depth == b.max_depth
}

fn histogram_json(histogram: &[u64]) -> Json {
    Json::Arr(histogram.iter().map(|&n| Json::int(n as usize)).collect())
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_fault.json".to_string());
    banner(
        "E19 (fault injection)",
        "under drops, delays, truncations, and garbled frames the remote \
         Lemma 7 reduction stays bit-identical to in-process and a loadgen \
         mix finishes with zero unrecovered errors",
    );

    let g = colored_path(7, 3);
    let vocab = g.vocab().as_ref().clone();
    let sentences = [
        "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
        "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
        "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
    ];
    let baselines: Vec<ReductionReport> = sentences
        .iter()
        .map(|s| {
            let phi = parse(s, &vocab).unwrap();
            let mut local = BruteForceOracle::new();
            model_check_via_erm(&g, &phi, &mut local)
        })
        .collect();

    // Drop and delay faults each cost a full read deadline before the
    // retry fires, so they run at low rates; truncate and garble fail
    // fast and can fault far more often.
    let modes = [
        (FaultKind::Drop, 0.03),
        (FaultKind::Delay, 0.03),
        (FaultKind::Truncate, 0.08),
        (FaultKind::Garble, 0.12),
    ];

    let mut table = Table::new(&[
        "mode", "rate", "faults", "retries", "reconns", "identical", "ms",
    ]);
    let mut mode_rows = Vec::new();
    let mut all_bit_identical = true;
    let mut total_faults = 0u64;

    for (kind, rate) in modes {
        let handle = start(&ServerConfig::default()).expect("daemon starts");
        let proxy = ChaosProxy::start(
            handle.addr(),
            ChaosConfig {
                kind,
                rate,
                // Longer than the client deadline, so a delayed frame is a
                // real fault (times the call out) rather than mere latency.
                delay: Duration::from_millis(400),
                direction: Direction::Both,
                seed: 0xE19,
            },
        )
        .expect("proxy starts");

        let t0 = Instant::now();
        let mut remote = RemoteOracle::connect_with(
            proxy.addr(),
            ClientConfig::with_deadline(DEADLINE),
            retry_policy(1),
        )
        .expect("oracle connects through the proxy");

        let mut identical = true;
        for (s, baseline) in sentences.iter().zip(&baselines) {
            let phi = parse(s, &vocab).unwrap();
            let report = model_check_via_erm(&g, &phi, &mut remote);
            if !reports_match(&report, baseline) {
                identical = false;
                eprintln!("[{}] report diverged on {s}", kind.name());
            }
        }
        let wall_ms = t0.elapsed().as_millis() as usize;

        let faults = proxy.faults_injected();
        let ts = remote.transport_stats();
        proxy.shutdown();
        handle.shutdown();

        all_bit_identical &= identical;
        total_faults += faults;
        table.row(cells!(
            kind.name(),
            format!("{rate:.2}"),
            faults,
            ts.retries,
            ts.reconnects,
            if identical { "yes" } else { "NO" },
            wall_ms
        ));
        mode_rows.push(Json::obj([
            ("mode", Json::str(kind.name())),
            ("rate", Json::Num(rate)),
            ("faults_injected", Json::int(faults as usize)),
            ("retries", Json::int(ts.retries as usize)),
            ("reconnects", Json::int(ts.reconnects as usize)),
            ("retry_histogram", histogram_json(&ts.retry_histogram)),
            ("oracle_calls", Json::int(remote.calls())),
            ("bit_identical", Json::Bool(identical)),
            ("wall_ms", Json::int(wall_ms)),
        ]));
    }
    table.print();
    println!();

    // --- Concurrent loadgen mix through a garbling proxy ----------------
    let handle = start(&ServerConfig::default()).expect("daemon starts");
    let proxy = ChaosProxy::start(
        handle.addr(),
        ChaosConfig {
            kind: FaultKind::Garble,
            rate: 0.10,
            delay: Duration::from_millis(400),
            direction: Direction::Both,
            seed: 0x10AD,
        },
    )
    .expect("proxy starts");
    let graph_text = io::to_text(&colored_path(10, 3));
    let config = LoadgenConfig {
        connections: 3,
        requests_per_conn: 30,
        seed: 19,
        sample_pool: 4,
        ell: 1,
        q: 1,
        client: ClientConfig::with_deadline(DEADLINE),
        retry: retry_policy(7),
        pipeline: 0,
    };
    let load = run_load(proxy.addr(), &graph_text, &config);
    let load_faults = proxy.faults_injected();
    proxy.shutdown();
    handle.shutdown();
    total_faults += load_faults;

    let solve_p99 = load
        .ops
        .iter()
        .find(|(op, _)| op == "solve")
        .map(|(_, s)| s.quantile_us(0.99))
        .unwrap_or(0);
    let unrecovered = load.errors + load.worker_errors.len();
    println!(
        "loadgen under garble: {} requests, {} faults, {} retries, \
         {} reconnects, {} unrecovered, solve p99 {solve_p99}us",
        load.requests, load_faults, load.retries, load.reconnects, unrecovered
    );
    for (worker, err) in &load.worker_errors {
        eprintln!("  worker {worker} failed: {err}");
    }

    let json = Json::obj([
        ("experiment", Json::str("E19")),
        ("graph_vertices", Json::int(g.num_vertices())),
        ("sentences", Json::int(sentences.len())),
        ("client_deadline_ms", Json::int(DEADLINE.as_millis() as usize)),
        ("max_retries", Json::int(retry_policy(0).max_retries as usize)),
        ("all_bit_identical", Json::Bool(all_bit_identical)),
        ("unrecovered_errors", Json::int(unrecovered)),
        ("total_faults_injected", Json::int(total_faults as usize)),
        ("modes", Json::Arr(mode_rows)),
        (
            "loadgen",
            Json::obj([
                ("fault_mode", Json::str("garble")),
                ("fault_rate", Json::Num(0.10)),
                ("requests", Json::int(load.requests)),
                ("errors", Json::int(load.errors)),
                ("faults_injected", Json::int(load_faults as usize)),
                ("retries", Json::int(load.retries as usize)),
                ("reconnects", Json::int(load.reconnects as usize)),
                ("retry_histogram", histogram_json(&load.retry_histogram)),
                ("worker_errors", Json::int(load.worker_errors.len())),
                ("solve_p99_us", Json::int(solve_p99 as usize)),
            ]),
        ),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let ok = all_bit_identical && unrecovered == 0 && total_faults > 0;
    verdict(
        ok,
        "every fault mode recovered via retries with bit-identical \
         reduction reports and the loadgen mix had zero unrecovered errors",
    );
    if !ok {
        std::process::exit(1);
    }
}
