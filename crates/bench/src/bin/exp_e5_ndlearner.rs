//! E5 — Theorem 13 / Theorem 2 (the nowhere-dense FPT learner).
//!
//! Claim: on nowhere dense classes (forests here) the learner achieves
//! `err ≤ ε* + ε` while scaling far better in `n` than the brute-force
//! `n^{ℓ+1}` sweep — near-linear at fixed parameters.

use folearn::bruteforce::optimal_error;
use folearn::ndlearner::{nd_learn, FinalRule, NdConfig, SearchMode};
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_bench::{banner, cells, loglog_slope, ms, timed, verdict, Json, Table};
use folearn_graph::splitter::GraphClass;
use folearn_graph::{generators, Vocabulary, V};

fn config() -> NdConfig {
    NdConfig {
        class: GraphClass::Forest,
        search: SearchMode::Exhaustive,
        final_rule: FinalRule::LocalAuto,
        locality_radius: Some(1),
        max_rounds: Some(3),
        max_branches: 80,
    }
}

fn main() {
    banner(
        "E5 (Theorem 13 / Theorem 2)",
        "on forests the learner returns err ≤ ε* + ε, and its runtime \
         grows much slower with n than brute force (who-wins shape: \
         FPT learner wins at scale)",
    );

    let mut table = Table::new(&[
        "n", "eps*", "nd-err", "ok", "rounds", "branches", "nd-ms", "bf-ms",
    ]);
    let mut nd_pts = Vec::new();
    let mut bf_pts = Vec::new();
    let mut reports: Vec<Json> = Vec::new();
    let mut all_ok = true;
    for n in [16usize, 32, 64, 128] {
        let g = generators::random_tree(n, Vocabulary::empty(), 13);
        let w = V(n as u32 / 2);
        let target = folearn_bench::near_w_target(&g, w);
        let mut examples = TrainingSequence::new();
        for v in g.vertices() {
            let mut label = target(&[v]);
            if v == V(1) {
                label = !label; // one adversarial flip: agnostic setting
            }
            examples.push(folearn::Example::new(vec![v], label));
        }
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
        let arena = shared_arena(&g);
        let (eps_star, bf_time) = timed(|| {
            if n <= 64 {
                optimal_error(&inst, &arena)
            } else {
                // Brute force becomes the bottleneck; extrapolate only.
                optimal_error(&inst, &arena)
            }
        });
        let (report, nd_time) = timed(|| nd_learn(&inst, &config(), &arena));
        let ok = report.error <= eps_star + inst.epsilon + 1e-9;
        all_ok &= ok;
        nd_pts.push((n as f64, nd_time.as_secs_f64()));
        bf_pts.push((n as f64, bf_time.as_secs_f64()));
        table.row(cells!(
            n,
            format!("{:.3}", eps_star),
            format!("{:.3}", report.error),
            ok,
            report.rounds_used,
            report.branches_explored,
            ms(nd_time),
            ms(bf_time)
        ));
        // The machine-readable record reuses the report's own JSON
        // rendering instead of re-formatting fields by hand.
        let mut row = vec![("n".to_string(), Json::int(n))];
        if let Json::Obj(pairs) = report.to_json() {
            row.extend(pairs);
        }
        reports.push(Json::Obj(row));
    }
    table.print();
    println!();
    println!("learner reports (JSONL):");
    for r in &reports {
        println!("{}", r.render());
    }
    println!();
    println!(
        "log-log slopes: nd-learner {:.2}, brute-force {:.2}",
        loglog_slope(&nd_pts),
        loglog_slope(&bf_pts)
    );
    verdict(
        all_ok,
        "err ≤ ε* + ε on every instance; the FPT learner's scaling \
         exponent sits well below brute force's",
    );
}
