//! E21 — cluster: the Lemma 7 reduction against a live replicated cluster.
//!
//! Claim: a 3-node loopback cluster behind the `folearn-cluster` router
//! (consistent-hash placement, R=2 replication, hedged reads) answers
//! the remote reduction *bit-identically* to the in-process oracle —
//! including with one backend killed mid-reduction (replica failover)
//! and with one router→backend link garbling frames (transport retries
//! plus failover). Identity across replicas rests on canonical type
//! keys: backends number types in their own arenas, but the oracle
//! groups answers by backend-independent Merkle keys. On top of
//! correctness, hedged reads cut tail latency: with one backend behind
//! an injected wire delay, the hedged router's read p99 sits far below
//! the same cluster read unhedged.
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_cluster.json` — or a path given as the first CLI argument.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use folearn_bench::{banner, cells, verdict, write_json_file, Json, Table};
use folearn_cluster::{start as start_router, RouterConfig, RouterHandle};
use folearn_graph::{generators, io, ColorId, Graph, Vocabulary};
use folearn_hardness::oracle::{BruteForceOracle, RemoteOracle};
use folearn_hardness::reduction::{model_check_via_erm, ReductionReport};
use folearn_logic::parse;
use folearn_server::{
    run_load_multi, start as start_server, ChaosConfig, ChaosProxy, Client, ClientApi,
    ClientConfig, Direction, FaultKind, LoadgenConfig, Request, Response, RetryPolicy,
    ServerConfig, ServerHandle,
};

/// Injected one-way wire delay on the slow backend's link; a read served
/// by that backend pays it in both directions.
const SLOW_DELAY: Duration = Duration::from_millis(40);
/// The hedged router fires at the next replica after this much silence.
const HEDGE_DELAY: Duration = Duration::from_millis(10);

fn colored_path(n: usize, stride: usize) -> Graph {
    let g = generators::path(n, Vocabulary::new(["Red"]));
    generators::periodically_colored(&g, ColorId(0), stride)
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(40),
        seed,
    }
}

/// The router's backend-call policy: fail fast (≈30ms of backoff), so a
/// dead backend surfaces as an error — and a recorded failover — before
/// the hedge timer would mask it.
fn failover_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        seed,
    }
}

fn spawn_backends(n: usize) -> (Vec<String>, HashMap<String, ServerHandle>) {
    let mut addrs = Vec::new();
    let mut by_addr = HashMap::new();
    for _ in 0..n {
        let h = start_server(&ServerConfig::default()).expect("backend starts");
        let a = h.addr().to_string();
        addrs.push(a.clone());
        by_addr.insert(a, h);
    }
    (addrs, by_addr)
}

fn router_over(
    backends: Vec<String>,
    replicas: usize,
    hedge: Option<Duration>,
) -> RouterHandle {
    start_router(&RouterConfig {
        backends,
        replicas,
        hedge_delay: hedge,
        client: ClientConfig::with_deadline(Duration::from_secs(5)),
        retry: failover_retry(7),
        ..RouterConfig::default()
    })
    .expect("router starts")
}

fn reports_match(a: &ReductionReport, b: &ReductionReport) -> bool {
    a.result == b.result
        && a.oracle_calls == b.oracle_calls
        && a.realizable_calls == b.realizable_calls
        && a.representative_set_sizes == b.representative_set_sizes
        && a.max_depth == b.max_depth
}

const SENTENCES: [&str; 3] = [
    "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
    "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
    "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
];

fn baselines(g: &Graph) -> Vec<ReductionReport> {
    let vocab = g.vocab().as_ref().clone();
    SENTENCES
        .iter()
        .map(|s| {
            let phi = parse(s, &vocab).unwrap();
            let mut local = BruteForceOracle::new();
            model_check_via_erm(g, &phi, &mut local)
        })
        .collect()
}

/// Run the three reduction sentences through `router` and compare each
/// report against the in-process baseline. Returns `(identical, wall_ms)`.
fn run_reduction(
    g: &Graph,
    expected: &[ReductionReport],
    router: &RouterHandle,
    tag: &str,
) -> (bool, usize) {
    let vocab = g.vocab().as_ref().clone();
    let t0 = Instant::now();
    let mut remote = RemoteOracle::connect_with(
        router.addr(),
        ClientConfig::with_deadline(Duration::from_secs(5)),
        retry_policy(1),
    )
    .expect("oracle connects to router");
    let mut identical = true;
    for (s, baseline) in SENTENCES.iter().zip(expected) {
        let phi = parse(s, &vocab).unwrap();
        let report = model_check_via_erm(g, &phi, &mut remote);
        if !reports_match(&report, baseline) {
            identical = false;
            eprintln!("[{tag}] report diverged on {s}");
        }
    }
    (identical, t0.elapsed().as_millis() as usize)
}

/// Register `g` through the router and return the ack's replica list.
fn placement(router: &RouterHandle, g: &Graph) -> Vec<String> {
    let mut probe = Client::connect(router.addr()).expect("probe connects");
    match probe.call(&Request::Register {
        graph_text: io::to_text(g),
    }) {
        Ok(Response::Registered {
            replicas: Some(replicas),
            ..
        }) => replicas,
        other => panic!("router register ack must list replicas, got {other:?}"),
    }
}

fn router_counters(router: &RouterHandle) -> (u64, u64, u64, u64) {
    let mut c = Client::connect(router.addr()).expect("stats client connects");
    let stats = c.stats().expect("router stats");
    let n = |key: &str| stats.get(key).and_then(|v| v.as_usize()).unwrap_or(0) as u64;
    (
        n("hedges_fired"),
        n("hedges_won"),
        n("replica_retries"),
        n("failovers"),
    )
}

fn p99_us(mut samples: Vec<u64>) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[((samples.len() * 99) / 100).min(samples.len() - 1)]
}

/// Drive `reads` model-checks per structure through the router and
/// return every per-request latency in microseconds.
fn timed_reads(router: &RouterHandle, structures: &[u64], reads: usize) -> Vec<u64> {
    let mut c = Client::connect(router.addr()).expect("reader connects");
    let mut samples = Vec::with_capacity(structures.len() * reads);
    for _ in 0..reads {
        for &s in structures {
            let t0 = Instant::now();
            c.modelcheck(s, "exists x0. Red(x0)").expect("modelcheck");
            samples.push(t0.elapsed().as_micros() as u64);
        }
    }
    samples
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cluster.json".to_string());
    banner(
        "E21 (cluster)",
        "a 3-node cluster behind the consistent-hash router reproduces the \
         in-process reduction bit for bit — through a backend kill and a \
         garbled link — and hedged reads beat unhedged tail latency under \
         an injected slow backend",
    );

    let g = colored_path(7, 3);
    let expected = baselines(&g);

    let mut table = Table::new(&["cell", "identical", "retries", "failovers", "ms"]);
    let mut all_bit_identical = true;

    // --- Cell 1: live 3-node cluster, R=2, hedging on -------------------
    let (addrs, by_addr) = spawn_backends(3);
    let router = router_over(addrs, 2, Some(Duration::from_millis(25)));
    let (identical, wall_ms) = run_reduction(&g, &expected, &router, "live");
    all_bit_identical &= identical;
    table.row(cells!(
        "live cluster",
        if identical { "yes" } else { "NO" },
        0usize,
        0usize,
        wall_ms
    ));
    let live_ms = wall_ms;
    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }

    // --- Cell 2: one backend killed mid-reduction -----------------------
    let (addrs, mut by_addr) = spawn_backends(3);
    let router = router_over(addrs, 2, Some(Duration::from_millis(50)));
    // The kill must hit a replica that actually serves the structure.
    let replicas = placement(&router, &g);
    let victim = by_addr.remove(&replicas[0]).expect("victim handle");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        victim.shutdown();
    });
    let (identical, wall_ms) = run_reduction(&g, &expected, &router, "kill");
    killer.join().unwrap();
    let (_, _, replica_retries, failovers) = router_counters(&router);
    all_bit_identical &= identical;
    table.row(cells!(
        "backend killed",
        if identical { "yes" } else { "NO" },
        replica_retries,
        failovers,
        wall_ms
    ));
    let kill_ms = wall_ms;
    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }

    // --- Cell 3: one router→backend link garbled ------------------------
    let (mut addrs, by_addr) = spawn_backends(3);
    let victim: std::net::SocketAddr = addrs[1].parse().unwrap();
    let proxy = ChaosProxy::start(
        victim,
        ChaosConfig {
            kind: FaultKind::Garble,
            rate: 0.10,
            delay: Duration::from_millis(100),
            direction: Direction::Both,
            seed: 0xC1A5,
        },
    )
    .expect("proxy starts");
    addrs[1] = proxy.addr().to_string();
    // R=3 so the poisoned link is a replica of every structure.
    let router = start_router(&RouterConfig {
        backends: addrs,
        replicas: 3,
        client: ClientConfig::with_deadline(Duration::from_millis(500)),
        retry: retry_policy(3),
        ..RouterConfig::default()
    })
    .expect("router starts");
    let (identical, wall_ms) = run_reduction(&g, &expected, &router, "garble");
    let garble_faults = proxy.faults_injected();
    let (_, _, garble_retries, garble_failovers) = router_counters(&router);
    all_bit_identical &= identical;
    table.row(cells!(
        "garbled link",
        if identical { "yes" } else { "NO" },
        garble_retries,
        garble_failovers,
        wall_ms
    ));
    let garble_ms = wall_ms;
    router.shutdown();
    proxy.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
    table.print();
    println!();

    // --- Hedged vs unhedged read p99 under a slow backend ---------------
    // Backend 0 sits behind a delay proxy: every frame on that link is
    // held SLOW_DELAY each way. Structures whose primary is the slow
    // backend pay the delay on every unhedged read; the hedged router
    // fires at the other replica after HEDGE_DELAY of silence instead.
    let (mut addrs, by_addr) = spawn_backends(3);
    let slow: std::net::SocketAddr = addrs[0].parse().unwrap();
    let proxy = ChaosProxy::start(
        slow,
        ChaosConfig {
            kind: FaultKind::Delay,
            rate: 1.0,
            delay: SLOW_DELAY,
            direction: Direction::Both,
            seed: 0x51_0e,
        },
    )
    .expect("delay proxy starts");
    let slow_addr = proxy.addr().to_string();
    addrs[0] = slow_addr.clone();

    // A pool of distinct structures: placement is content-hashed, so
    // roughly a third land on the slow primary. The pool grows until at
    // least two do (the backends sit on ephemeral ports, so the split
    // varies run to run); both routers share the ring, hence placement.
    let mut pool: Vec<Graph> = Vec::new();
    {
        let probe_router = router_over(addrs.clone(), 2, None);
        let mut slow_now = 0usize;
        for i in 0..40 {
            if pool.len() >= 8 && slow_now >= 2 {
                break;
            }
            let pg = colored_path(5 + i, 3);
            let on_slow = placement(&probe_router, &pg)[0] == slow_addr;
            if pool.len() >= 8 && !on_slow {
                continue;
            }
            if on_slow {
                slow_now += 1;
            }
            pool.push(pg);
        }
        probe_router.shutdown();
    }
    let mut hedged_p99 = 0;
    let mut unhedged_p99 = 0;
    let mut slow_primary = 0usize;
    let mut hedges_fired = 0;
    let mut hedges_won = 0;
    for hedge in [None, Some(HEDGE_DELAY)] {
        let router = router_over(addrs.clone(), 2, hedge);
        let mut structures = Vec::new();
        let mut slow_now = 0usize;
        for pg in &pool {
            let reps = placement(&router, pg);
            if reps[0] == slow_addr {
                slow_now += 1;
            }
            let mut c = Client::connect(router.addr()).unwrap();
            structures.push(c.register(&io::to_text(pg)).expect("register"));
        }
        slow_primary = slow_now;
        let samples = timed_reads(&router, &structures, 12);
        let p99 = p99_us(samples);
        if hedge.is_some() {
            hedged_p99 = p99;
            let (fired, won, _, _) = router_counters(&router);
            hedges_fired = fired;
            hedges_won = won;
        } else {
            unhedged_p99 = p99;
        }
        router.shutdown();
    }
    proxy.shutdown();
    let hedge_win_rate = if hedges_fired > 0 {
        hedges_won as f64 / hedges_fired as f64
    } else {
        0.0
    };
    println!(
        "hedged reads: {slow_primary}/{} structures on the slow primary; \
         p99 {unhedged_p99}us unhedged vs {hedged_p99}us hedged \
         ({hedges_fired} hedges fired, {hedges_won} won)",
        pool.len()
    );

    // --- Multi-target loadgen across the (healthy) backends -------------
    let healthy: Vec<std::net::SocketAddr> = by_addr
        .keys()
        .map(|a| a.parse().unwrap())
        .collect();
    let load = run_load_multi(
        &healthy,
        &io::to_text(&colored_path(10, 3)),
        &LoadgenConfig {
            connections: 3,
            requests_per_conn: 30,
            seed: 21,
            sample_pool: 4,
            ell: 1,
            q: 1,
            client: ClientConfig::with_deadline(Duration::from_millis(500)),
            retry: retry_policy(5),
            pipeline: 0,
        },
    );
    for (_, h) in by_addr {
        h.shutdown();
    }
    let unrecovered = load.errors + load.worker_errors.len();
    println!(
        "loadgen over {} targets: {} requests, {} errors, {} unrecovered",
        load.targets.len(),
        load.requests,
        load.errors,
        unrecovered
    );
    for (addr, requests, errors) in &load.targets {
        println!("  target {addr}: {requests} requests, {errors} errors");
    }
    println!();

    let json = Json::obj([
        ("experiment", Json::str("E21")),
        ("graph_vertices", Json::int(g.num_vertices())),
        ("sentences", Json::int(SENTENCES.len())),
        ("backends", Json::int(3)),
        ("replicas", Json::int(2)),
        ("all_bit_identical", Json::Bool(all_bit_identical)),
        ("replica_retries", Json::int(replica_retries as usize)),
        ("failovers", Json::int(failovers as usize)),
        ("garble_faults_injected", Json::int(garble_faults as usize)),
        ("hedges_fired", Json::int(hedges_fired as usize)),
        ("hedges_won", Json::int(hedges_won as usize)),
        ("hedge_win_rate", Json::Num(hedge_win_rate)),
        ("hedged_p99_us", Json::int(hedged_p99 as usize)),
        ("unhedged_p99_us", Json::int(unhedged_p99 as usize)),
        ("unrecovered_errors", Json::int(unrecovered)),
        (
            "cells",
            Json::Arr(vec![
                Json::obj([
                    ("cell", Json::str("live")),
                    ("wall_ms", Json::int(live_ms)),
                ]),
                Json::obj([
                    ("cell", Json::str("backend_killed")),
                    ("wall_ms", Json::int(kill_ms)),
                ]),
                Json::obj([
                    ("cell", Json::str("garbled_link")),
                    ("wall_ms", Json::int(garble_ms)),
                ]),
            ]),
        ),
        (
            "hedging",
            Json::obj([
                ("hedge_ms", Json::int(HEDGE_DELAY.as_millis() as usize)),
                ("slow_delay_ms", Json::int(SLOW_DELAY.as_millis() as usize)),
                ("structures", Json::int(pool.len())),
                ("slow_primary_structures", Json::int(slow_primary)),
            ]),
        ),
        (
            "loadgen",
            Json::obj([
                ("requests", Json::int(load.requests)),
                ("errors", Json::int(load.errors)),
                ("worker_errors", Json::int(load.worker_errors.len())),
                (
                    "targets",
                    Json::Arr(
                        load.targets
                            .iter()
                            .map(|(addr, requests, errors)| {
                                Json::obj([
                                    ("addr", Json::str(addr)),
                                    ("requests", Json::int(*requests)),
                                    ("errors", Json::int(*errors)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let hedging_helped = slow_primary == 0 || hedged_p99 < unhedged_p99;
    let ok = all_bit_identical
        && unrecovered == 0
        && replica_retries > 0
        && failovers > 0
        && garble_faults > 0
        && hedges_fired > 0
        && hedges_won > 0
        && hedging_helped;
    verdict(
        ok,
        "the cluster reduction is bit-identical through kill and garble, \
         the loadgen mix had zero unrecovered errors, and hedged reads \
         beat the unhedged tail under a slow backend",
    );
    if !ok {
        std::process::exit(1);
    }
}
