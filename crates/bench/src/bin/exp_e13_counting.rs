//! E13 — the FO+C extension (the paper's conclusion / van Bergerem,
//! LICS 2019).
//!
//! Claim: counting quantifiers strictly extend the learnable concepts at
//! fixed quantifier rank — degree-threshold targets are inexpressible in
//! `FO[τ, 1]` but exactly learnable with counting types of the matching
//! cap — while the type machinery's costs stay in the same regime (the
//! number of counting types is still bounded independently of `n`).

use folearn::fit::{fit_with_params, TypeMode};
use folearn::problem::TrainingSequence;
use folearn::shared_arena;
use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_graph::{generators, ColorId, Vocabulary, V};

fn main() {
    banner(
        "E13 (FO+C extension)",
        "degree-threshold targets: FO q=1 misfits, counting types with \
         cap ≥ threshold fit exactly; counting-type counts still \
         stabilise in n",
    );

    let mut table = Table::new(&["n", "threshold", "mode", "err", "time-ms"]);
    let mut fo_errs = Vec::new();
    let mut foc_errs = Vec::new();
    for n in [20usize, 40, 80] {
        let g = {
            let t = generators::random_tree(n, Vocabulary::new(["Red"]), 31);
            generators::periodically_colored(&t, ColorId(0), 2)
        };
        for threshold in [2usize, 3] {
            let target = |t: &[V]| {
                g.neighbors(t[0])
                    .iter()
                    .filter(|&&w| g.has_color(V(w), ColorId(0)))
                    .count()
                    >= threshold
            };
            let examples = TrainingSequence::label_all_tuples(&g, 1, target);
            let arena = shared_arena(&g);
            let (r_fo, t_fo) = timed(|| {
                fit_with_params(&g, &examples, &[], 1, TypeMode::Local { r: 1 }, &arena)
            });
            let (r_foc, t_foc) = timed(|| {
                fit_with_params(
                    &g,
                    &examples,
                    &[],
                    1,
                    TypeMode::LocalCounting {
                        r: 1,
                        cap: threshold as u32,
                    },
                    &arena,
                )
            });
            fo_errs.push(r_fo.1);
            foc_errs.push(r_foc.1);
            table.row(cells!(
                n,
                threshold,
                "FO (local q=1)",
                format!("{:.3}", r_fo.1),
                ms(t_fo)
            ));
            table.row(cells!(
                n,
                threshold,
                format!("FO+C cap={threshold}"),
                format!("{:.3}", r_foc.1),
                ms(t_foc)
            ));
        }
    }
    table.print();

    // Counting-type census stabilisation.
    println!();
    let mut counts = Vec::new();
    for n in [8usize, 17, 29] {
        let g = folearn_bench::red_path(n, 3);
        let arena = shared_arena(&g);
        let mut a = arena.lock();
        let c: std::collections::HashSet<_> = g
            .vertices()
            .map(|v| folearn_types::compute::counting_type_of(&g, &mut a, &[v], 1, 3))
            .collect();
        counts.push(c.len());
        println!("counting (cap 3) unary 1-types on red-path n={n}: {}", c.len());
    }

    let fo_misses = fo_errs.iter().any(|&e| e > 0.0);
    let foc_fits = foc_errs.iter().all(|&e| e == 0.0);
    let stable = counts[1] == counts[2];
    verdict(
        fo_misses && foc_fits && stable,
        "FO+C fits every degree-threshold target exactly where plain FO \
         has unavoidable error, and counting-type counts stabilise",
    );
}
