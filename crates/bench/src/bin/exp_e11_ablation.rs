//! E11 — ablations of the Theorem 13 learner's engineering modes.
//!
//! DESIGN.md §4 documents two deviations with practical modes: the final
//! classification rule (exact global types vs. fast local types) and the
//! simulation of the non-deterministic `Y ⊆ X` guess (exhaustive vs.
//! greedy). This experiment quantifies what each mode costs in achieved
//! error and buys in time/branches — and sweeps the locality radius.

use folearn::bruteforce::optimal_error;
use folearn::ndlearner::{nd_learn, FinalRule, NdConfig, SearchMode};
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_graph::splitter::GraphClass;
use folearn_graph::{generators, Vocabulary, V};

fn main() {
    banner(
        "E11 (ablation: learner modes)",
        "greedy guessing and the local final rule trade ≤ ε extra error \
         for large time/branch savings; the locality radius r controls the \
         conflict-detection granularity",
    );

    let n = 48;
    let g = generators::random_tree(n, Vocabulary::empty(), 23);
    let w = V(n as u32 / 2);
    let target = folearn_bench::near_w_target(&g, w);
    let examples = TrainingSequence::label_all_tuples(&g, 1, &target);
    let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.2);
    let arena = shared_arena(&g);
    let eps_star = optimal_error(&inst, &arena);
    println!("n = {n}, ε* = {eps_star:.3}, ε = {}\n", inst.epsilon);

    let mut table = Table::new(&[
        "search", "final-rule", "r", "err", "within-bound", "rounds", "branches", "time-ms",
    ]);
    let mut all_ok = true;
    let variants: Vec<(&str, SearchMode, &str, FinalRule, usize)> = vec![
        ("exhaustive", SearchMode::Exhaustive, "local-auto", FinalRule::LocalAuto, 1),
        ("exhaustive", SearchMode::Exhaustive, "global", FinalRule::Global, 1),
        ("greedy", SearchMode::Greedy, "local-auto", FinalRule::LocalAuto, 1),
        ("greedy", SearchMode::Greedy, "global", FinalRule::Global, 1),
        ("exhaustive", SearchMode::Exhaustive, "local(3)", FinalRule::Local(3), 1),
        ("exhaustive", SearchMode::Exhaustive, "local-auto", FinalRule::LocalAuto, 2),
        ("exhaustive", SearchMode::Exhaustive, "local-auto", FinalRule::LocalAuto, 4),
    ];
    for (sname, search, fname, final_rule, r) in variants {
        let cfg = NdConfig {
            class: GraphClass::Forest,
            search,
            final_rule,
            locality_radius: Some(r),
            max_rounds: Some(3),
            max_branches: 100,
        };
        let (report, t) = timed(|| nd_learn(&inst, &cfg, &arena));
        let ok = report.error <= eps_star + inst.epsilon + 1e-9;
        all_ok &= ok;
        table.row(cells!(
            sname,
            fname,
            r,
            format!("{:.3}", report.error),
            ok,
            report.rounds_used,
            report.branches_explored,
            ms(t)
        ));
    }
    table.print();
    verdict(
        all_ok,
        "every mode stays within the ε* + ε bound on this workload; the \
         greedy/local modes explore far fewer branches",
    );
}
