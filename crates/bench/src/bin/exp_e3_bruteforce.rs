//! E3 — Proposition 11 (brute force is XP).
//!
//! Claim: Algorithm 1 runs in `O(n^{ℓ} · m · type-cost)`, i.e. its
//! runtime is polynomial with degree growing in `ℓ`: the measured log-log
//! slope of time against `n` increases by ≈1 per extra parameter.

use folearn::bruteforce::brute_force_erm;
use folearn::fit::TypeMode;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_bench::{banner, cells, loglog_slope, ms, timed, verdict, Table};
use folearn_graph::V;

fn main() {
    banner(
        "E3 (Proposition 11 / Algorithm 1)",
        "brute-force ERM scales polynomially with degree ~ ℓ + cost(fit): \
         log-log slopes separate ℓ = 0, 1, 2 by ≈1",
    );

    let mut table = Table::new(&["ell", "n", "m", "params-touched", "err", "time-ms"]);
    let mut slopes = Vec::new();
    for ell in [0usize, 1, 2] {
        let mut pts = Vec::new();
        let ns: &[usize] = match ell {
            0 => &[40, 80, 160, 320],
            1 => &[20, 40, 80, 160],
            _ => &[10, 20, 40, 60],
        };
        for &n in ns {
            let g = folearn_bench::red_tree(n, 4, 11);
            // An unrealisable target so no early exit distorts timing:
            // pseudo-random labels force the full parameter sweep.
            let examples =
                TrainingSequence::label_all_tuples(&g, 1, |t: &[V]| (t[0].0 * 2654435761) % 7 < 3);
            let inst = ErmInstance::new(&g, examples, 1, ell, 1, 0.0);
            let arena = shared_arena(&g);
            let (res, elapsed) = timed(|| {
                brute_force_erm(&inst, TypeMode::Local { r: 1 }, &arena)
            });
            // Only full sweeps enter the slope estimate: a lucky early
            // perfect fit at small n would skew the degree measurement.
            // Pruned tuples count as touched — the engine still tallies a
            // prefix of the examples for them.
            let touched = res.evaluated_params + res.pruned_params;
            let full_sweep = touched == g.num_vertices().pow(ell as u32);
            if full_sweep {
                pts.push((n as f64, elapsed.as_secs_f64()));
            }
            table.row(cells!(
                ell,
                n,
                n,
                touched,
                format!("{:.3}", res.error),
                ms(elapsed)
            ));
        }
        slopes.push(loglog_slope(&pts));
    }
    table.print();
    println!();
    println!(
        "log-log slopes: ell=0: {:.2}, ell=1: {:.2}, ell=2: {:.2}",
        slopes[0], slopes[1], slopes[2]
    );
    let ok = slopes[1] > slopes[0] + 0.5 && slopes[2] > slopes[1] + 0.5;
    verdict(
        ok,
        "each extra parameter raises the polynomial degree by ≈1 \
         (XP in ℓ, as Proposition 11 predicts)",
    );
}
