//! E14 — sublinear learning on bounded degree (reference \[22\]) and weak
//! colouring numbers.
//!
//! Claims:
//! * the local-access learner touches `O(m · d^{O(r)})` vertices —
//!   independent of `n` — while matching quality on local targets
//!   (Grohe–Ritzert, the paper's "Related Work" baseline);
//! * weak colouring numbers `wcol_r` stay flat in `n` on trees/grids and
//!   grow linearly on cliques — the second certificate of the Theorem 2
//!   boundary.

use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn::sublinear::local_access_learn;
use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_graph::wcol::wcol;
use folearn_graph::{generators, Vocabulary, V};

fn main() {
    banner(
        "E14 ([22] sublinear learning + wcol)",
        "vertices touched by the local-access learner are flat in n; \
         wcol_r is flat in n on sparse classes, linear on cliques",
    );

    println!("-- local-access learner, 12 examples, bounded degree 3 --");
    let mut table = Table::new(&["n", "touched", "touched/n", "err", "time-ms"]);
    let mut touches = Vec::new();
    for n in [500usize, 2000, 8000] {
        let g = generators::bounded_degree_random(n, 3, 1.0, Vocabulary::empty(), 7);
        let w = V(42);
        let target = |t: &[V]| t[0] == w || g.has_edge(t[0], w);
        // Examples around w plus scattered negatives.
        let mut pairs: Vec<(Vec<V>, bool)> = vec![(vec![w], true)];
        for &u in g.neighbors(w).iter().take(3) {
            pairs.push((vec![V(u)], true));
        }
        for i in 0..8u32 {
            let v = V((i * 131 + 7) % n as u32);
            pairs.push((vec![v], target(&[v])));
        }
        let examples = TrainingSequence::from_pairs(pairs);
        let inst = ErmInstance::new(&g, examples, 1, 1, 1, 0.1);
        let arena = shared_arena(&g);
        let (report, t) = timed(|| local_access_learn(&inst, 2, 1, &arena));
        touches.push(report.vertices_touched);
        table.row(cells!(
            n,
            report.vertices_touched,
            format!("{:.3}", report.vertices_touched as f64 / n as f64),
            format!("{:.3}", report.error),
            ms(t)
        ));
    }
    table.print();

    println!("\n-- weak colouring numbers (degeneracy order) --");
    let mut table = Table::new(&["class", "n", "wcol_1", "wcol_2", "wcol_3"]);
    let mut tree_w3 = Vec::new();
    for n in [100usize, 400, 1600] {
        let g = generators::random_tree(n, Vocabulary::empty(), 3);
        let (w1, w2, w3) = (wcol(&g, 1), wcol(&g, 2), wcol(&g, 3));
        tree_w3.push(w3);
        table.row(cells!("tree", n, w1, w2, w3));
    }
    for side in [8usize, 16] {
        let g = generators::grid(side, side, Vocabulary::empty());
        table.row(cells!(
            "grid",
            side * side,
            wcol(&g, 1),
            wcol(&g, 2),
            wcol(&g, 3)
        ));
    }
    let mut clique_w1 = Vec::new();
    for n in [10usize, 20, 40] {
        let g = generators::clique(n, Vocabulary::empty());
        let w1 = wcol(&g, 1);
        clique_w1.push(w1);
        table.row(cells!("clique", n, w1, wcol(&g, 2), wcol(&g, 3)));
    }
    table.print();

    let touch_flat = touches[2] < touches[0] * 4;
    let tree_flat = tree_w3[2] <= tree_w3[0] * 3;
    let clique_linear = clique_w1[2] == 40;
    verdict(
        touch_flat && tree_flat && clique_linear,
        "sublinear access confirmed (touched count ~flat while n grows \
         16x); wcol flat on trees/grids, = n on cliques",
    );
}
