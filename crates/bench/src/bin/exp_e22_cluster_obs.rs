//! E22 — cluster observability: distributed traces stitched across the
//! router, fan-in stats aggregation, and the cost of tracing.
//!
//! Claim: every opted-in solve routed through a traced cluster comes
//! back with ONE stitched span tree — a `router.solve` root holding a
//! `router.attempt` child per backend call (primary, hedge, failover,
//! with provenance and outcome in span meta) and the winning backend's
//! `server.solve` subtree — while the answers stay bit-identical to an
//! untraced cluster and to the in-process oracle, at ≤5% wall-clock
//! overhead on the E21 reduction workload. Tracing is sampled at the
//! edge: a solve is stitched only when its request carries a trace
//! context, so the reduction workload (which sends none) pays nothing
//! for a trace-enabled router; the per-solve cost of opting in is
//! reported alongside. Hedges and failovers are visible as attempt
//! spans (forced here with a delay proxy and a backend kill), cache
//! replays carry a `replayed` stamp, a client-supplied trace id
//! propagates into the root span, and the router's `stats` fans out to
//! every backend and merges the snapshots (counters summed, latency
//! histograms merged bucket-wise).
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_cluster_obs.json` — or a path given as the first CLI argument.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use folearn::TypeMode;
use folearn_bench::{banner, cells, red_path, verdict, write_json_file, Json, Table};
use folearn_cluster::{start as start_router, RouterConfig, RouterHandle};
use folearn_graph::{io, Graph};
use folearn_hardness::oracle::{BruteForceOracle, RemoteOracle};
use folearn_hardness::reduction::{model_check_via_erm, ReductionReport};
use folearn_logic::parse;
use folearn_logic::vm::EvalEngine;
use folearn_obs::export::span_from_json;
use folearn_obs::SpanRecord;
use folearn_server::{
    hex64, start as start_server, ChaosConfig, ChaosProxy, Client, ClientApi, ClientConfig,
    Direction, FaultKind, Request, Response, RetryPolicy, ServerConfig, ServerHandle,
    SolveOutcome, SolverSpec, TraceContext, WireExample,
};

/// Injected one-way wire delay on the slow backend's link (a solve
/// served through it pays the delay both ways).
const SLOW_DELAY: Duration = Duration::from_millis(40);
/// The hedged router fires at the next replica after this much silence.
const HEDGE_DELAY: Duration = Duration::from_millis(10);
/// Paired cold reduction passes for the overhead measurement (median
/// of per-pair ratios; passes run tens of ms, so singles are
/// noise-dominated and the host's load drifts between seconds).
const OVERHEAD_REPEATS: usize = 11;
/// Paired warm solves for the per-solve opt-in cost measurement.
const WARM_PAIRS: usize = 200;

const SENTENCES: [&str; 3] = [
    "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
    "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
    "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
];

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(40),
        seed,
    }
}

/// Fail fast on backend calls so a dead backend surfaces as a recorded
/// failover instead of hiding behind backoff.
fn failover_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        seed,
    }
}

fn spawn_backends(n: usize) -> (Vec<String>, HashMap<String, ServerHandle>) {
    let mut addrs = Vec::new();
    let mut by_addr = HashMap::new();
    for _ in 0..n {
        let h = start_server(&ServerConfig::default()).expect("backend starts");
        let a = h.addr().to_string();
        addrs.push(a.clone());
        by_addr.insert(a, h);
    }
    (addrs, by_addr)
}

fn router_over(
    backends: Vec<String>,
    replicas: usize,
    hedge: Option<Duration>,
    trace: bool,
) -> RouterHandle {
    start_router(&RouterConfig {
        backends,
        replicas,
        hedge_delay: hedge,
        client: ClientConfig::with_deadline(Duration::from_secs(5)),
        retry: failover_retry(7),
        trace,
        ..RouterConfig::default()
    })
    .expect("router starts")
}

fn reports_match(a: &ReductionReport, b: &ReductionReport) -> bool {
    a.result == b.result
        && a.oracle_calls == b.oracle_calls
        && a.realizable_calls == b.realizable_calls
        && a.representative_set_sizes == b.representative_set_sizes
        && a.max_depth == b.max_depth
}

fn baselines(g: &Graph) -> Vec<ReductionReport> {
    let vocab = g.vocab().as_ref().clone();
    SENTENCES
        .iter()
        .map(|s| {
            let phi = parse(s, &vocab).unwrap();
            let mut local = BruteForceOracle::new();
            model_check_via_erm(g, &phi, &mut local)
        })
        .collect()
}

/// Run the reduction sentences through `router` and compare against the
/// in-process baseline. Returns `(identical, wall)`.
fn run_reduction(
    g: &Graph,
    expected: &[ReductionReport],
    router: &RouterHandle,
    tag: &str,
) -> (bool, Duration) {
    let vocab = g.vocab().as_ref().clone();
    let t0 = Instant::now();
    let mut remote = RemoteOracle::connect_with(
        router.addr(),
        ClientConfig::with_deadline(Duration::from_secs(5)),
        retry_policy(1),
    )
    .expect("oracle connects to router");
    let mut identical = true;
    for (s, baseline) in SENTENCES.iter().zip(expected) {
        let phi = parse(s, &vocab).unwrap();
        let report = model_check_via_erm(g, &phi, &mut remote);
        if !reports_match(&report, baseline) {
            identical = false;
            eprintln!("[{tag}] report diverged on {s}");
        }
    }
    (identical, t0.elapsed())
}

/// A cold reduction pass on a fresh cluster; returns `(identical, wall)`.
fn cold_pass(g: &Graph, expected: &[ReductionReport], trace: bool, tag: &str) -> (bool, Duration) {
    let (addrs, by_addr) = spawn_backends(3);
    let router = router_over(addrs, 2, Some(Duration::from_millis(25)), trace);
    let out = run_reduction(g, expected, &router, tag);
    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }
    out
}

/// Register `g` through the router and return the ack's replica list.
fn placement(router: &RouterHandle, g: &Graph) -> (u64, Vec<String>) {
    let mut probe = Client::connect(router.addr()).expect("probe connects");
    match probe.call(&Request::Register {
        graph_text: io::to_text(g),
    }) {
        Ok(Response::Registered {
            structure,
            replicas: Some(replicas),
            ..
        }) => (structure, replicas),
        other => panic!("router register ack must list replicas, got {other:?}"),
    }
}

fn spec() -> SolverSpec {
    SolverSpec::Brute {
        mode: TypeMode::Global,
        threads: None,
        prune: true,
        engine: EvalEngine::TreeWalk,
    }
}

fn examples() -> Vec<WireExample> {
    vec![
        WireExample {
            tuple: vec![0],
            label: true,
        },
        WireExample {
            tuple: vec![1],
            label: false,
        },
    ]
}

/// What one stitched trace contains.
#[derive(Default)]
struct TraceAudit {
    complete: bool,
    attempts: usize,
    hedge_spans: usize,
    failover_spans: usize,
    backend_subtrees: usize,
    replay_spans: usize,
}

fn meta_str<'a>(rec: &'a SpanRecord, key: &str) -> Option<&'a str> {
    rec.meta
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_str())
}

fn meta_bool(rec: &SpanRecord, key: &str) -> Option<bool> {
    rec.meta
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| v.as_bool())
}

fn walk<'a>(rec: &'a SpanRecord, f: &mut impl FnMut(&'a SpanRecord)) {
    f(rec);
    for ch in &rec.children {
        walk(ch, f);
    }
}

/// Audit one solve's stitched trace: it is complete when a
/// `router.solve` root holds at least one won `router.attempt` whose
/// subtree contains the backend's `server.solve` span.
fn audit(trace: &Json) -> TraceAudit {
    let rec = span_from_json(trace).expect("stitched trace parses as a span tree");
    let mut a = TraceAudit::default();
    let mut won = 0usize;
    walk(&rec, &mut |sp| {
        match sp.name.as_str() {
            "router.attempt" => {
                a.attempts += 1;
                match meta_str(sp, "kind") {
                    Some("hedge") => a.hedge_spans += 1,
                    Some("failover") => a.failover_spans += 1,
                    _ => {}
                }
                if meta_str(sp, "outcome") == Some("won") {
                    won += 1;
                }
            }
            "server.solve" => {
                a.backend_subtrees += 1;
                if meta_bool(sp, "replayed") == Some(true) {
                    a.replay_spans += 1;
                }
            }
            _ => {}
        }
    });
    a.complete = rec.name == "router.solve" && won >= 1 && a.backend_subtrees >= 1;
    a
}

/// Solve with a minted trace context: stitching is on demand, so the
/// request must opt in to come back with a span tree.
fn traced_solve(router: &RouterHandle, structure: u64) -> SolveOutcome {
    static NEXT_TID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0x77E2_0001);
    let trace_id = NEXT_TID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut c = Client::connect(router.addr()).expect("solver connects");
    c.solve_traced(
        structure,
        examples(),
        1,
        1,
        0.0,
        spec(),
        TraceContext {
            trace_id,
            parent: 0,
        },
    )
    .expect("routed solve")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_cluster_obs.json".to_string());
    banner(
        "E22 (cluster observability)",
        "every routed solve returns one stitched span tree (router root, \
         per-attempt children with hedges and failovers, the winning \
         backend's subtree), answers stay bit-identical traced or not at \
         ≤5% overhead, and router stats fan in every backend's snapshot",
    );

    // Large enough that a cold pass runs ~100ms: millisecond-scale
    // spawn/scheduler jitter then stays well inside the 5% budget.
    let g = red_path(11, 3);
    let expected = baselines(&g);

    // --- Cell 1+2: identity and overhead, traced vs untraced ------------
    // Cold passes on fresh clusters per repeat so brute-force compute —
    // the E21 workload — dominates. The reduction's oracle sends no
    // trace context, so this measures what the workload pays for merely
    // ENABLING tracing on the router: stitching is per-request opt-in,
    // and unsampled traffic through a trace-enabled router must cost
    // the same as `trace off`. Host load drifts over seconds, so the
    // estimator is paired: each repeat runs both modes back to back
    // (alternating which goes first to cancel ordering bias) and the
    // headline number is the median of the per-pair wall ratios.
    let mut all_bit_identical = true;
    let mut traced_min = Duration::MAX;
    let mut untraced_min = Duration::MAX;
    let mut ratios = Vec::with_capacity(OVERHEAD_REPEATS);
    for i in 0..OVERHEAD_REPEATS {
        let traced_first = i % 2 == 1;
        let (mut on, mut off) = (Duration::ZERO, Duration::ZERO);
        for traced in [traced_first, !traced_first] {
            let (id, wall) = cold_pass(&g, &expected, traced, if traced { "traced" } else { "untraced" });
            all_bit_identical &= id;
            if traced {
                on = wall;
            } else {
                off = wall;
            }
        }
        untraced_min = untraced_min.min(off);
        traced_min = traced_min.min(on);
        ratios.push(on.as_secs_f64() / off.as_secs_f64());
        println!(
            "pass {i}: untraced {}ms, traced {}ms (ratio {:.3})",
            off.as_millis(),
            on.as_millis(),
            on.as_secs_f64() / off.as_secs_f64()
        );
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let overhead_pct = ((ratios[ratios.len() / 2] - 1.0) * 100.0).max(0.0);
    println!(
        "tracing overhead: median pair ratio {:.3} ({overhead_pct:.2}%); min walls {}ms untraced, {}ms traced",
        ratios[ratios.len() / 2],
        untraced_min.as_millis(),
        traced_min.as_millis()
    );
    println!();

    // --- Cell 3: trace completeness under hedging -----------------------
    // Backend 0 hides behind a delay proxy; structures whose primary it
    // is get hedged after HEDGE_DELAY, so their traces grow a hedge
    // attempt span next to the discarded primary.
    let (mut addrs, by_addr) = spawn_backends(3);
    let slow: std::net::SocketAddr = addrs[0].parse().unwrap();
    let proxy = ChaosProxy::start(
        slow,
        ChaosConfig {
            kind: FaultKind::Delay,
            rate: 1.0,
            delay: SLOW_DELAY,
            direction: Direction::Both,
            seed: 0x0B5,
        },
    )
    .expect("delay proxy starts");
    let slow_addr = proxy.addr().to_string();
    addrs[0] = slow_addr.clone();
    let router = router_over(addrs.clone(), 2, Some(HEDGE_DELAY), true);

    // A pool with at least two slow-primary structures (placement is
    // content-hashed over ephemeral ports, so the pool grows to fit).
    let mut pool: Vec<(u64, bool)> = Vec::new();
    for i in 0..40 {
        let slow_now = pool.iter().filter(|(_, s)| *s).count();
        if pool.len() >= 6 && slow_now >= 2 {
            break;
        }
        let pg = red_path(5 + i, 3);
        let (structure, reps) = placement(&router, &pg);
        let on_slow = reps[0] == slow_addr;
        if pool.len() >= 6 && !on_slow {
            continue;
        }
        pool.push((structure, on_slow));
    }

    let mut total = TraceAudit::default();
    let mut audited = 0usize;
    let mut complete = 0usize;
    for &(structure, _) in &pool {
        let outcome = traced_solve(&router, structure);
        let trace = outcome.trace.as_ref().expect("traced router returns a trace");
        let a = audit(trace);
        audited += 1;
        complete += a.complete as usize;
        total.attempts += a.attempts;
        total.hedge_spans += a.hedge_spans;
        total.failover_spans += a.failover_spans;
        total.backend_subtrees += a.backend_subtrees;
        total.replay_spans += a.replay_spans;
    }

    // Replay: the same solve again is answered from the backend cache,
    // and its stitched subtree carries the `replayed` stamp.
    let replayed = traced_solve(&router, pool[0].0);
    assert!(replayed.cached, "second identical solve must be cached");
    let replay_audit = audit(replayed.trace.as_ref().expect("replayed trace"));
    total.replay_spans += replay_audit.replay_spans;
    audited += 1;
    complete += replay_audit.complete as usize;

    // Per-solve cost of opting in (informational, not gated): paired
    // warm solves through the same router, alternating which mode goes
    // first, compared at the median. Uses a structure whose primary is
    // not behind the delay proxy so hedging noise stays out of the
    // numbers.
    let warm_structure = pool
        .iter()
        .find(|(_, on_slow)| !on_slow)
        .map_or(pool[0].0, |&(s, _)| s);
    let (traced_p50_us, untraced_p50_us) = {
        let mut c = Client::connect(router.addr()).expect("warm client connects");
        let p50 = |mut v: Vec<u64>| -> u64 {
            v.sort_unstable();
            v[v.len() / 2]
        };
        let mut lt = Vec::with_capacity(WARM_PAIRS);
        let mut lu = Vec::with_capacity(WARM_PAIRS);
        for i in 0..WARM_PAIRS {
            let order = if i % 2 == 0 { [true, false] } else { [false, true] };
            for traced in order {
                let t0 = Instant::now();
                if traced {
                    let o = c
                        .solve_traced(
                            warm_structure,
                            examples(),
                            1,
                            1,
                            0.0,
                            spec(),
                            TraceContext {
                                trace_id: 0x77E2_F000 + i as u64,
                                parent: 0,
                            },
                        )
                        .expect("warm traced solve");
                    lt.push(t0.elapsed().as_micros() as u64);
                    assert!(o.cached, "warm solves must replay from cache");
                } else {
                    let o = c
                        .solve(warm_structure, examples(), 1, 1, 0.0, spec())
                        .expect("warm untraced solve");
                    lu.push(t0.elapsed().as_micros() as u64);
                    assert!(o.cached, "warm solves must replay from cache");
                }
            }
        }
        (p50(lt), p50(lu))
    };
    println!(
        "opt-in cost per warm solve: p50 {traced_p50_us}us traced vs {untraced_p50_us}us untraced"
    );

    // A client-supplied trace context propagates into the root span.
    let mut c = Client::connect(router.addr()).expect("trace client connects");
    let (client_tid, client_parent) = (0xABCD_u64, 0x11_u64);
    let propagated = match c.call(&Request::Solve {
        structure: pool[0].0,
        examples: examples(),
        ell: 1,
        q: 1,
        epsilon: 0.0,
        solver: spec(),
        trace: Some(TraceContext {
            trace_id: client_tid,
            parent: client_parent,
        }),
    }) {
        Ok(Response::Solved(outcome)) => {
            let rec = span_from_json(outcome.trace.as_ref().expect("trace")).expect("parses");
            meta_str(&rec, "trace_id") == Some(hex64(client_tid).as_str())
                && meta_str(&rec, "parent") == Some(hex64(client_parent).as_str())
        }
        other => panic!("traced solve must come back Solved, got {other:?}"),
    };

    // --- Cell 4: fan-in stats through the same router --------------------
    let stats = {
        let mut c = Client::connect(router.addr()).expect("stats client connects");
        c.stats().expect("router stats")
    };
    let cluster = stats.get("cluster").expect("router stats carry a cluster section");
    let backends_total = cluster
        .get("backends_total")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let backends_reporting = cluster
        .get("backends_reporting")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let cluster_requests = cluster
        .get("requests")
        .and_then(Json::as_usize)
        .unwrap_or(0);
    let merged_solve = cluster
        .get("endpoints")
        .and_then(|e| e.get("solve"))
        .map(|s| s.get("hist").is_some())
        .unwrap_or(false);
    let node_roles_ok = cluster
        .get("nodes")
        .and_then(Json::as_arr)
        .map(|rows| {
            rows.iter()
                .filter(|r| r.get("error").is_none())
                .all(|r| r.get("role").and_then(Json::as_str) == Some("server"))
        })
        .unwrap_or(false);
    let series_buckets = stats
        .get("series")
        .and_then(|s| s.get("buckets"))
        .and_then(Json::as_arr)
        .map_or(0, <[Json]>::len);
    let role_ok = stats.get("role").and_then(Json::as_str) == Some("router")
        && stats.get("uptime_ms").and_then(Json::as_num).is_some();
    router.shutdown();
    proxy.shutdown();

    // --- Cell 5: failover span after a backend kill ----------------------
    // Kill the primary replica of a structure, then solve it: the trace
    // must show the failed primary attempt and the winning failover.
    let router = router_over(by_addr.keys().cloned().collect(), 2, None, true);
    let fg = red_path(9, 3);
    let (structure, reps) = placement(&router, &fg);
    let mut by_addr = by_addr;
    let victim = by_addr.remove(&reps[0]).expect("victim handle");
    victim.shutdown();
    let outcome = traced_solve(&router, structure);
    let failover_audit = audit(outcome.trace.as_ref().expect("failover trace"));
    audited += 1;
    complete += failover_audit.complete as usize;
    total.attempts += failover_audit.attempts;
    total.failover_spans += failover_audit.failover_spans;
    total.backend_subtrees += failover_audit.backend_subtrees;
    router.shutdown();
    for (_, h) in by_addr {
        h.shutdown();
    }

    let trace_complete = audited > 0 && complete == audited;
    let mut table = Table::new(&["measure", "value"]);
    table.row(cells!("bit-identical", if all_bit_identical { "yes" } else { "NO" }));
    table.row(cells!("overhead %", format!("{overhead_pct:.2}")));
    table.row(cells!("opt-in p50 µs", format!("{traced_p50_us} vs {untraced_p50_us}")));
    table.row(cells!("traces audited", audited));
    table.row(cells!("traces complete", complete));
    table.row(cells!("attempt spans", total.attempts));
    table.row(cells!("hedge spans", total.hedge_spans));
    table.row(cells!("failover spans", total.failover_spans));
    table.row(cells!("backend subtrees", total.backend_subtrees));
    table.row(cells!("replay spans", total.replay_spans));
    table.print();
    println!();

    let json = Json::obj([
        ("experiment", Json::str("E22")),
        ("graph_vertices", Json::int(g.num_vertices())),
        ("sentences", Json::int(SENTENCES.len())),
        ("backends", Json::int(3)),
        ("replicas", Json::int(2)),
        ("all_bit_identical", Json::Bool(all_bit_identical)),
        ("untraced_ms", Json::int(untraced_min.as_millis() as usize)),
        ("traced_ms", Json::int(traced_min.as_millis() as usize)),
        ("overhead_pct", Json::Num(overhead_pct)),
        ("optin_traced_p50_us", Json::int(traced_p50_us as usize)),
        ("optin_untraced_p50_us", Json::int(untraced_p50_us as usize)),
        ("traces_audited", Json::int(audited)),
        ("traces_complete", Json::int(complete)),
        ("trace_complete", Json::Bool(trace_complete)),
        ("attempt_spans", Json::int(total.attempts)),
        ("hedge_spans", Json::int(total.hedge_spans)),
        ("failover_spans", Json::int(total.failover_spans)),
        ("backend_subtrees", Json::int(total.backend_subtrees)),
        ("replay_spans", Json::int(total.replay_spans)),
        ("client_trace_id_propagated", Json::Bool(propagated)),
        (
            "stats",
            Json::obj([
                ("role_and_uptime_ok", Json::Bool(role_ok)),
                ("backends_total", Json::int(backends_total)),
                ("backends_reporting", Json::int(backends_reporting)),
                ("cluster_requests", Json::int(cluster_requests)),
                ("merged_solve_hist", Json::Bool(merged_solve)),
                ("node_roles_ok", Json::Bool(node_roles_ok)),
                ("series_buckets", Json::int(series_buckets)),
            ]),
        ),
        (
            "hedging",
            Json::obj([
                ("hedge_ms", Json::int(HEDGE_DELAY.as_millis() as usize)),
                ("slow_delay_ms", Json::int(SLOW_DELAY.as_millis() as usize)),
                ("structures", Json::int(pool.len())),
                (
                    "slow_primary_structures",
                    Json::int(pool.iter().filter(|(_, s)| *s).count()),
                ),
            ]),
        ),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let ok = all_bit_identical
        && overhead_pct <= 5.0
        && trace_complete
        && total.hedge_spans > 0
        && total.failover_spans > 0
        && total.replay_spans > 0
        && propagated
        && role_ok
        && backends_total == 3
        && backends_reporting == 3
        && merged_solve
        && node_roles_ok
        && series_buckets > 0;
    verdict(
        ok,
        "routed solves return complete stitched traces (hedges, failovers, \
         replays, and client trace ids all visible), answers are \
         bit-identical traced or untraced within the overhead budget, and \
         the router's stats aggregate every backend's snapshot",
    );
    if !ok {
        std::process::exit(1);
    }
}
