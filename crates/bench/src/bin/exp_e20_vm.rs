//! E20 — compiled formula evaluation: the bytecode VM vs the tree walker.
//!
//! Claim: compiling a hypothesis formula once and evaluating a whole
//! vertex batch per dispatch (u64-word bitsets, semijoin quantifiers)
//! beats the allocation-fixed tree walker by ≥5× on the E3-style
//! brute-force parameter sweep — per parameter tuple, one batched VM run
//! replaces `n` per-vertex `satisfies` calls — while staying
//! bit-identical on every verdict. Also records the daemon's cold-solve
//! latency under each engine (the VM engine adds a full cross-validation
//! pass on top of the solve, so its latency bounds the validation cost).
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_vm.json` — or a path given as the first CLI argument.

use std::time::Instant;

use folearn_bench::{banner, cells, red_tree, timed, verdict, write_json_file, Json, Table};
use folearn_graph::{io, V};
use folearn_logic::eval::{self, Assignment};
use folearn_logic::parse;
use folearn_logic::vm::{get_bit, Evaluator, Program, VmGraph};
use folearn_server::{start, Client, ClientApi, ServerConfig, SolverSpec, WireExample};

/// The E3 formula family: hypotheses φ(x0; x1) a brute-force sweep
/// evaluates once per parameter vertex, over every example vertex.
const FAMILY: &[(&str, &str)] = &[
    ("qfree", "E(x0, x1) & Red(x0)"),
    ("exists1", "exists x2. E(x0, x2) & Red(x2) & E(x2, x1)"),
    (
        "exists2",
        "exists x2. E(x0, x2) & Red(x2) & exists x3. E(x2, x3) & !Red(x3)",
    ),
];

fn us_since(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_vm.json".to_string());
    banner(
        "E20 (compiled formula evaluation)",
        "one batched VM run per parameter tuple beats n tree walks by ≥5×, \
         bit-identically, across the E3 formula family",
    );

    let mut table = Table::new(&[
        "formula", "n", "params", "tree-us", "vm-us", "speedup", "identical",
    ]);
    let mut rows = Vec::new();
    let mut min_speedup = f64::INFINITY;
    let mut all_identical = true;
    let mut vm_instructions = 0u64;
    let mut vm_words = 0u64;

    for &(name, text) in FAMILY {
        for n in [128usize, 256, 512, 1024] {
            let g = red_tree(n, 4, 11);
            let phi = parse(text, g.vocab()).expect("family formula parses");
            // Sweep a fixed-size parameter sample so every row does the
            // same number of batched runs.
            let params: Vec<V> = (0..n).step_by(n / 64).map(|i| V(i as u32)).collect();

            // Tree walker: per parameter, one scratch-reusing satisfies
            // call per vertex — the allocation-fixed E3 inner loop.
            let (tree_verdicts, tree_time) = timed(|| {
                let mut scratch = Assignment::new();
                let mut out: Vec<Vec<bool>> = Vec::with_capacity(params.len());
                for &p in &params {
                    let mut row = Vec::with_capacity(n);
                    for v in g.vertices() {
                        row.push(eval::satisfies_with_scratch(&g, &phi, &[v, p], &mut scratch));
                    }
                    out.push(row);
                }
                out
            });

            // VM: compile once, then one batched run per parameter.
            let prog = Program::compile(&phi, 0, &[1]);
            let vg = VmGraph::new(&g);
            let (vm_verdicts, vm_time) = timed(|| {
                let mut ev = Evaluator::new(&prog, &vg);
                let out: Vec<Vec<u64>> = params
                    .iter()
                    .map(|&p| ev.run(&[(1, p)]).to_vec())
                    .collect();
                let stats = ev.stats();
                vm_instructions += stats.instructions;
                vm_words += stats.words_scanned;
                out
            });

            let identical = params.iter().enumerate().all(|(i, _)| {
                g.vertices()
                    .all(|v| tree_verdicts[i][v.index()] == get_bit(&vm_verdicts[i], v.index()))
            });
            all_identical &= identical;

            let tree_us = tree_time.as_micros() as u64;
            let vm_us = vm_time.as_micros().max(1) as u64;
            let speedup = tree_time.as_secs_f64() / vm_time.as_secs_f64().max(1e-9);
            min_speedup = min_speedup.min(speedup);
            table.row(cells!(
                name,
                n,
                params.len(),
                tree_us,
                vm_us,
                format!("{speedup:.1}x"),
                identical
            ));
            rows.push(Json::obj([
                ("formula", Json::str(name)),
                ("n", Json::int(n)),
                ("params", Json::int(params.len())),
                ("tree_us", Json::int(tree_us as usize)),
                ("vm_us", Json::int(vm_us as usize)),
                ("speedup", Json::Num((speedup * 10.0).round() / 10.0)),
                ("bit_identical", Json::Bool(identical)),
            ]));
        }
    }
    table.print();
    println!();
    println!(
        "min speedup: {min_speedup:.1}x; VM work: {vm_instructions} instructions, \
         {vm_words} bitset words"
    );
    println!();

    // --- Cold-solve daemon latency under each engine --------------------
    // Engine selection is part of the solve-cache key, so both solves are
    // cold; the VM engine's latency includes its cross-validation pass
    // over every example on top of the identical solve.
    let handle = start(&ServerConfig::default()).expect("daemon starts");
    let mut client = Client::connect(handle.addr()).expect("client connects");
    let g = red_tree(48, 4, 11);
    let structure = client.register(&io::to_text(&g)).expect("register");
    let sample: Vec<WireExample> = (0..8)
        .map(|i| WireExample {
            tuple: vec![(i * 5) % g.num_vertices() as u32],
            label: i % 2 == 0,
        })
        .collect();
    let mut solve_with = |spec: SolverSpec| {
        let t = Instant::now();
        let res = client
            .solve(structure, sample.clone(), 1, 1, 0.0, spec)
            .expect("solve");
        (res, us_since(t))
    };
    let (tree_solve, tree_cold_us) = solve_with(SolverSpec::default_brute());
    let mut vm_spec = SolverSpec::default_brute();
    if let SolverSpec::Brute { engine, .. } = &mut vm_spec {
        *engine = folearn_logic::vm::EvalEngine::Vm;
    }
    let (vm_solve, vm_cold_us) = solve_with(vm_spec);
    handle.shutdown();
    assert!(!tree_solve.cached && !vm_solve.cached, "both solves are cold");
    // `id` is a per-registration handle, so compare the hypothesis
    // content: parameters, type set, and the reported error bits.
    let outcomes_identical = tree_solve.hypothesis.params == vm_solve.hypothesis.params
        && tree_solve.hypothesis.types == vm_solve.hypothesis.types
        && tree_solve.error.to_bits() == vm_solve.error.to_bits();
    println!(
        "daemon cold solve: tree {tree_cold_us} us, vm {vm_cold_us} us \
         (vm includes cross-validation); outcomes identical: {outcomes_identical}"
    );
    println!();

    let json = Json::obj([
        ("experiment", Json::str("E20")),
        ("sweeps", Json::Arr(rows)),
        ("speedup", Json::Num((min_speedup * 10.0).round() / 10.0)),
        ("all_bit_identical", Json::Bool(all_identical)),
        ("vm_instructions", Json::int(vm_instructions as usize)),
        ("vm_words_scanned", Json::int(vm_words as usize)),
        (
            "server",
            Json::obj([
                ("cold_solve_tree_us", Json::int(tree_cold_us as usize)),
                ("cold_solve_vm_us", Json::int(vm_cold_us as usize)),
                ("outcomes_identical", Json::Bool(outcomes_identical)),
            ]),
        ),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let ok = all_identical && outcomes_identical && min_speedup >= 5.0;
    verdict(
        ok,
        "every batched sweep is ≥5× faster than the tree walker and every \
         verdict — sweep and solve alike — is bit-identical",
    );
    if !ok {
        std::process::exit(1);
    }
}
