//! E24 — crash: the Lemma 7 reduction through a SIGKILL'd-and-restarted
//! backend, with and without durable state.
//!
//! Claim: a 3-node cluster of *OS-process* backends behind the router
//! answers the remote reduction bit-identically to the in-process
//! oracle even while one backend is SIGKILL'd mid-reduction and
//! restarted — and the two recovery paths differ exactly as designed:
//!
//! * `--data-dir` (durable): the restarted backend replays its WAL —
//!   `wal_records_replayed > 0`, hypotheses and their local ids intact —
//!   so the router's anti-entropy sweep finds **nothing to re-seed**
//!   (`reseeds == 0`). Recovery cost is the replay, measured both by
//!   the daemon (`recovery_ms`) and end to end (`restart_ms`).
//! * volatile: the backend comes back empty (`wal_records_replayed ==
//!   0`) and convergence costs a cold reseed — the gap between the
//!   process serving again and its inventory holding the structure.
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_crash.json` — or a path given as the first CLI argument.
//! Needs the `folearn` CLI binary next to this one (`cargo build
//! --release` builds both).

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use folearn_bench::{banner, cells, verdict, write_json_file, Json, Table};
use folearn_cluster::{start as start_router, RouterConfig, RouterHandle};
use folearn_graph::{generators, io, ColorId, Graph, Vocabulary};
use folearn_hardness::oracle::{BruteForceOracle, RemoteOracle};
use folearn_hardness::reduction::{model_check_via_erm, ReductionReport};
use folearn_logic::parse;
use folearn_server::{Client, ClientApi, ClientConfig, Request, Response, RetryPolicy};

/// How long the reduction runs before the killer thread pulls the plug.
const KILL_AFTER: Duration = Duration::from_millis(20);
/// Anti-entropy cadence for the cell routers: fast, so a cold backend
/// converges within the bench run.
const REPAIR_INTERVAL: Duration = Duration::from_millis(50);

fn colored_path(n: usize, stride: usize) -> Graph {
    let g = generators::path(n, Vocabulary::new(["Red"]));
    generators::periodically_colored(&g, ColorId(0), stride)
}

fn retry_policy(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(40),
        seed,
    }
}

/// The router's backend-call policy: fail fast so the SIGKILL surfaces
/// as a failover instead of a stall.
fn failover_retry(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 3,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
        seed,
    }
}

const SENTENCES: [&str; 3] = [
    "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
    "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
    "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
];

fn baselines(g: &Graph) -> Vec<ReductionReport> {
    let vocab = g.vocab().as_ref().clone();
    SENTENCES
        .iter()
        .map(|s| {
            let phi = parse(s, &vocab).unwrap();
            let mut local = BruteForceOracle::new();
            model_check_via_erm(g, &phi, &mut local)
        })
        .collect()
}

fn reports_match(a: &ReductionReport, b: &ReductionReport) -> bool {
    a.result == b.result
        && a.oracle_calls == b.oracle_calls
        && a.realizable_calls == b.realizable_calls
        && a.representative_set_sizes == b.representative_set_sizes
        && a.max_depth == b.max_depth
}

/// Run the three reduction sentences through `router` and compare each
/// report against the in-process baseline. Returns `(identical, wall_ms)`.
fn run_reduction(
    g: &Graph,
    expected: &[ReductionReport],
    router: &RouterHandle,
    tag: &str,
) -> (bool, usize) {
    let vocab = g.vocab().as_ref().clone();
    let t0 = Instant::now();
    let mut remote = RemoteOracle::connect_with(
        router.addr(),
        ClientConfig::with_deadline(Duration::from_secs(5)),
        retry_policy(1),
    )
    .expect("oracle connects to router");
    let mut identical = true;
    for (s, baseline) in SENTENCES.iter().zip(expected) {
        let phi = parse(s, &vocab).unwrap();
        let report = model_check_via_erm(g, &phi, &mut remote);
        if !reports_match(&report, baseline) {
            identical = false;
            eprintln!("[{tag}] report diverged on {s}");
        }
    }
    (identical, t0.elapsed().as_millis() as usize)
}

/// The `folearn` CLI binary, expected to sit next to this experiment in
/// the cargo target directory.
fn folearn_bin() -> PathBuf {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = exe.parent().expect("exe dir");
    for cand in [dir.join("folearn"), dir.join("../folearn")] {
        if cand.exists() {
            return cand;
        }
    }
    panic!(
        "folearn binary not found next to {}; run `cargo build --release` first",
        exe.display()
    );
}

/// Spawn `folearn serve` as a real OS process (so SIGKILL means
/// SIGKILL), optionally durable, and wait until it serves.
fn spawn_serve(addr: &str, data_dir: Option<&Path>, addr_file: &Path) -> (std::process::Child, String) {
    for attempt in 0..3 {
        let _ = std::fs::remove_file(addr_file);
        let mut cmd = std::process::Command::new(folearn_bin());
        cmd.arg("serve")
            .args(["--addr", addr])
            .args(["--addr-file", addr_file.to_str().unwrap()])
            .stdout(std::process::Stdio::null())
            .stderr(std::process::Stdio::null());
        if let Some(d) = data_dir {
            cmd.args(["--data-dir", d.to_str().unwrap()]);
        }
        let child = cmd.spawn().expect("spawn folearn serve");
        let t0 = Instant::now();
        // The daemon writes the addr file only once it is listening.
        while t0.elapsed() < Duration::from_secs(5) {
            if let Ok(s) = std::fs::read_to_string(addr_file) {
                if !s.trim().is_empty() {
                    return (child, s.trim().to_string());
                }
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        eprintln!("backend on {addr} did not come up (attempt {attempt}); retrying");
        let mut child = child;
        let _ = child.kill();
        let _ = child.wait();
    }
    panic!("backend on {addr} did not come up after 3 attempts");
}

/// Register `g` through the router; return the content hash and the
/// replica addresses the ack lists.
fn placement(router: &RouterHandle, g: &Graph) -> (u64, Vec<String>) {
    let mut probe = Client::connect(router.addr()).expect("probe connects");
    match probe.call(&Request::Register {
        graph_text: io::to_text(g),
    }) {
        Ok(Response::Registered {
            structure,
            replicas: Some(replicas),
            ..
        }) => (structure, replicas),
        other => panic!("router register ack must list replicas, got {other:?}"),
    }
}

fn stat_u64(stats: &folearn_server::proto::Json, key: &str) -> u64 {
    stats.get(key).and_then(|v| v.as_usize()).unwrap_or(0) as u64
}

/// Everything one cell measures.
struct CellOutcome {
    identical: bool,
    wall_ms: usize,
    failovers: u64,
    reseeds: u64,
    rebinds_avoided: u64,
    /// SIGKILL → the respawned process answers `stats` again.
    restart_ms: usize,
    /// Serving again → its inventory holds the reduction's structure
    /// (0 when the WAL already restored it).
    converge_ms: usize,
    wal_records_replayed: u64,
    /// The daemon's own measure of replay cost (volatile: 0).
    recovery_ms: u64,
    /// Post-restart hypothesis count straight off the victim —
    /// durable restarts come back with bindings already in place.
    hypotheses_after_restart: usize,
    unrecovered_errors: usize,
}

/// One experiment cell: 3 OS-process backends, router on top, kill a
/// replica of the structure mid-reduction, restart it on the same
/// address (and same data dir when durable), then wait for the
/// anti-entropy sweep to settle and read every counter.
fn run_cell(g: &Graph, expected: &[ReductionReport], durable: bool) -> CellOutcome {
    let tag = if durable { "durable" } else { "volatile" };
    let root = std::env::temp_dir().join(format!("folearn-e24-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("scratch dir");

    let data_dir = |i: usize| durable.then(|| root.join(format!("b{i}")));
    let addr_file = |i: usize| root.join(format!("addr-{i}"));
    let mut children: Vec<Option<std::process::Child>> = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..3 {
        let (child, addr) = spawn_serve("127.0.0.1:0", data_dir(i).as_deref(), &addr_file(i));
        children.push(Some(child));
        addrs.push(addr);
    }

    let router = start_router(&RouterConfig {
        backends: addrs.clone(),
        replicas: 2,
        client: ClientConfig::with_deadline(Duration::from_secs(5)),
        retry: failover_retry(7),
        repair_interval: Some(REPAIR_INTERVAL),
        ..RouterConfig::default()
    })
    .expect("router starts");

    // Register before the kill: the structure is on the victim's disk
    // (durable cell) or in its memory (volatile cell) from second one.
    let (hash, replicas) = placement(&router, g);
    let victim_addr = replicas[0].clone();
    let vi = addrs.iter().position(|a| *a == victim_addr).expect("victim index");
    let victim_child = children[vi].take().expect("victim handle");

    let victim_dir = data_dir(vi);
    let victim_file = addr_file(vi);
    let killer = std::thread::spawn(move || {
        std::thread::sleep(KILL_AFTER);
        let mut victim = victim_child;
        victim.kill().expect("SIGKILL victim");
        let _ = victim.wait();
        let t0 = Instant::now();
        // Respawn on the *same* address so the router's fixed backend
        // list points at the revived process.
        let (child, _) = spawn_serve(&victim_addr, victim_dir.as_deref(), &victim_file);
        let mut restart_ms;
        loop {
            restart_ms = t0.elapsed().as_millis() as usize;
            if Client::connect(&victim_addr).and_then(|mut c| c.stats()).is_ok() {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "victim never served again");
            std::thread::sleep(Duration::from_millis(2));
        }
        (child, victim_addr, restart_ms)
    });

    let (identical, wall_ms) = run_reduction(g, expected, &router, tag);
    let (revived, victim_addr, restart_ms) = killer.join().expect("killer thread");
    children[vi] = Some(revived);

    let mut unrecovered_errors = usize::from(!identical);

    // Cold-reseed clock: serving again → inventory holds the structure.
    // Durable restarts pass on the first poll (the WAL restored it);
    // volatile ones wait for the anti-entropy sweep or a request-path
    // reseed to close the gap.
    let t0 = Instant::now();
    let (converge_ms, hypotheses_after_restart) = loop {
        match Client::connect(&victim_addr).and_then(|mut c| c.inventory()) {
            Ok((structures, hyps)) if structures.contains(&hash) => {
                break (t0.elapsed().as_millis() as usize, hyps.len());
            }
            _ => {}
        }
        if t0.elapsed() > Duration::from_secs(10) {
            eprintln!("[{tag}] victim inventory never converged");
            unrecovered_errors += 1;
            break (t0.elapsed().as_millis() as usize, 0);
        }
        std::thread::sleep(Duration::from_millis(2));
    };

    // Let at least two full repair sweeps run after convergence so the
    // reseed/rebind counters are settled, then read everything.
    std::thread::sleep(REPAIR_INTERVAL * 3);
    let router_stats = Client::connect(router.addr())
        .and_then(|mut c| c.stats())
        .expect("router stats");
    let failovers = stat_u64(&router_stats, "failovers");
    let reseeds = stat_u64(&router_stats, "repairs_performed");
    let rebinds_avoided = stat_u64(&router_stats, "rebinds_avoided");

    let victim_stats = Client::connect(&victim_addr)
        .and_then(|mut c| c.stats())
        .expect("victim stats");
    let wal_records_replayed = stat_u64(&victim_stats, "wal_records_replayed");
    let recovery_ms = stat_u64(&victim_stats, "recovery_ms");

    // The revived backend must answer the reduction's sentence through
    // the router — no client-side re-registration anywhere.
    let mut check = Client::connect(router.addr()).expect("check client");
    match check.modelcheck(hash, SENTENCES[0]) {
        Ok(_) => {}
        Err(e) => {
            eprintln!("[{tag}] post-restart modelcheck failed: {e}");
            unrecovered_errors += 1;
        }
    }

    router.shutdown();
    for child in children.iter_mut().flatten() {
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&root);

    CellOutcome {
        identical,
        wall_ms,
        failovers,
        reseeds,
        rebinds_avoided,
        restart_ms,
        converge_ms,
        wal_records_replayed,
        recovery_ms,
        hypotheses_after_restart,
        unrecovered_errors,
    }
}

fn cell_json(name: &str, c: &CellOutcome) -> Json {
    Json::obj([
        ("cell", Json::str(name)),
        ("bit_identical", Json::Bool(c.identical)),
        ("wall_ms", Json::int(c.wall_ms)),
        ("failovers", Json::int(c.failovers as usize)),
        ("reseeds", Json::int(c.reseeds as usize)),
        ("rebinds_avoided", Json::int(c.rebinds_avoided as usize)),
        ("restart_ms", Json::int(c.restart_ms)),
        ("converge_ms", Json::int(c.converge_ms)),
        (
            "wal_records_replayed",
            Json::int(c.wal_records_replayed as usize),
        ),
        ("recovery_ms", Json::int(c.recovery_ms as usize)),
        (
            "hypotheses_after_restart",
            Json::int(c.hypotheses_after_restart),
        ),
    ])
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_crash.json".to_string());
    banner(
        "E24 (crash)",
        "the Lemma 7 reduction stays bit-identical through a mid-reduction \
         SIGKILL + restart of a backend process; with --data-dir the node \
         replays its WAL and needs zero reseeds, without it convergence \
         costs a cold reseed",
    );

    let g = colored_path(7, 3);
    let expected = baselines(&g);

    let durable = run_cell(&g, &expected, true);
    let volatile = run_cell(&g, &expected, false);

    let mut table = Table::new(&[
        "cell",
        "identical",
        "reseeds",
        "replayed",
        "restart ms",
        "converge ms",
        "ms",
    ]);
    for (name, c) in [("--data-dir", &durable), ("volatile", &volatile)] {
        table.row(cells!(
            name,
            if c.identical { "yes" } else { "NO" },
            c.reseeds as usize,
            c.wal_records_replayed as usize,
            c.restart_ms,
            c.converge_ms,
            c.wall_ms
        ));
    }
    table.print();
    println!();
    println!(
        "recovery (WAL replay): {}ms to serving + {}ms to full inventory, \
         {} records replayed (daemon-side replay {}ms), {} bindings back",
        durable.restart_ms,
        durable.converge_ms,
        durable.wal_records_replayed,
        durable.recovery_ms,
        durable.hypotheses_after_restart
    );
    println!(
        "reseed (cold):         {}ms to serving + {}ms to full inventory, \
         {} reseeds, {} rebinds avoided",
        volatile.restart_ms, volatile.converge_ms, volatile.reseeds, volatile.rebinds_avoided
    );
    println!();

    let all_bit_identical = durable.identical && volatile.identical;
    let unrecovered = durable.unrecovered_errors + volatile.unrecovered_errors;
    let json = Json::obj([
        ("experiment", Json::str("E24")),
        ("graph_vertices", Json::int(g.num_vertices())),
        ("sentences", Json::int(SENTENCES.len())),
        ("backends", Json::int(3)),
        ("replicas", Json::int(2)),
        (
            "repair_interval_ms",
            Json::int(REPAIR_INTERVAL.as_millis() as usize),
        ),
        ("all_bit_identical", Json::Bool(all_bit_identical)),
        ("unrecovered_errors", Json::int(unrecovered)),
        (
            "durable_recovery_ms",
            Json::int(durable.restart_ms + durable.converge_ms),
        ),
        (
            "cold_reseed_ms",
            Json::int(volatile.restart_ms + volatile.converge_ms),
        ),
        (
            "cells",
            Json::Arr(vec![
                cell_json("durable", &durable),
                cell_json("volatile", &volatile),
            ]),
        ),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let ok = all_bit_identical
        && unrecovered == 0
        && durable.reseeds == 0
        && durable.wal_records_replayed > 0
        && volatile.wal_records_replayed == 0;
    verdict(
        ok,
        "both cells reproduce the reduction bit for bit through the kill; \
         the durable restart replayed its WAL with zero reseeds, the \
         volatile one converged only by reseeding",
    );
    if !ok {
        std::process::exit(1);
    }
}
