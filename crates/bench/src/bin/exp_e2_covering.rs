//! E2 — Lemma 3 (Vitali covering).
//!
//! Claim: for every `X ⊆ V(G)` and `r ≥ 1` the construction yields `Z ⊆ X`
//! and `R = 3^i r` with `i ≤ |X|−1` such that the `R`-balls of `Z` are
//! pairwise disjoint and cover `N_r(X)`.

use folearn::covering::{verify_covering, vitali_cover};
use folearn_bench::{banner, cells, verdict, Table};
use folearn_graph::{generators, Vocabulary, V};

fn main() {
    banner(
        "E2 (Lemma 3)",
        "Z ⊆ X with pairwise-disjoint R-balls covering N_r(X); \
         R = 3^i·r with i ≤ |X|−1 (worst case: geometric spacing on a path)",
    );

    let mut table = Table::new(&[
        "graph", "n", "|X|", "r", "|Z|", "steps", "R", "disjoint+cover",
    ]);
    let mut all_ok = true;

    // Regular spacings on a path.
    for spacing in [1usize, 3, 9] {
        let g = generators::path(100, Vocabulary::empty());
        let x: Vec<V> = (0..8).map(|i| V((i * spacing) as u32 % 100)).collect();
        let c = vitali_cover(&g, &x, 2);
        let ok = verify_covering(&g, &x, 2, &c);
        all_ok &= ok && c.steps < x.len();
        table.row(cells!(
            format!("path(spacing={spacing})"),
            100,
            x.len(),
            2,
            c.centers.len(),
            c.steps,
            c.radius,
            ok
        ));
    }

    // The proof's worst case: x_i at positions 3^i·r.
    let g = generators::path(250, Vocabulary::empty());
    let x: Vec<V> = [0usize, 1, 3, 9, 27, 81, 243]
        .iter()
        .map(|&p| V(p as u32))
        .collect();
    let c = vitali_cover(&g, &x, 1);
    let ok = verify_covering(&g, &x, 1, &c);
    all_ok &= ok && c.steps < x.len();
    table.row(cells!(
        "path(worst case 3^i)",
        250,
        x.len(),
        1,
        c.centers.len(),
        c.steps,
        c.radius,
        ok
    ));

    // Random trees and grids.
    for seed in [1u64, 2, 3] {
        let g = generators::random_tree(120, Vocabulary::empty(), seed);
        let x: Vec<V> = (0..10).map(|i| V((i * 13) % 120)).collect();
        for r in [1usize, 3] {
            let c = vitali_cover(&g, &x, r);
            let ok = verify_covering(&g, &x, r, &c);
            all_ok &= ok;
            table.row(cells!(
                format!("tree(seed={seed})"),
                120,
                x.len(),
                r,
                c.centers.len(),
                c.steps,
                c.radius,
                ok
            ));
        }
    }
    let g = generators::grid(12, 12, Vocabulary::empty());
    let x: Vec<V> = (0..9).map(|i| V((i * 17) % 144)).collect();
    let c = vitali_cover(&g, &x, 2);
    let ok = verify_covering(&g, &x, 2, &c);
    all_ok &= ok;
    table.row(cells!(
        "grid 12x12",
        144,
        x.len(),
        2,
        c.centers.len(),
        c.steps,
        c.radius,
        ok
    ));

    table.print();
    verdict(
        all_ok,
        "every covering satisfied both Lemma 3 guarantees with i ≤ |X|−1",
    );
}
