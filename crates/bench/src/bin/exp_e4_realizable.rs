//! E4 — Proposition 12 (realisable k = 1).
//!
//! Claim: Algorithm 2 finds a consistent hypothesis with
//! `O(|Φ'| · ℓ · n)` model-checking calls — linear in `n` per candidate,
//! versus the `n^ℓ` parameter tuples brute force would try.

use folearn::realizable::realizable_k1;
use folearn::problem::TrainingSequence;
use folearn_bench::{banner, cells, loglog_slope, ms, timed, verdict, Table};
use folearn_graph::{generators, Vocabulary, V};
use folearn_logic::parse;

fn main() {
    banner(
        "E4 (Proposition 12 / Algorithm 2)",
        "the realisable k=1 prefix search makes O(ℓ·n) oracle (model \
         checking) calls per candidate — far below the n^ℓ brute-force \
         parameter sweep",
    );

    let mut table = Table::new(&[
        "n", "ell", "mc-calls", "ℓ·n", "n^ℓ", "found", "time-ms",
    ]);
    let mut pts = Vec::new();
    let mut all_ok = true;
    for n in [12usize, 24, 48, 96] {
        let g = generators::path(n, Vocabulary::empty());
        let (w1, w2) = (V(n as u32 / 4), V(3 * n as u32 / 4));
        let examples =
            TrainingSequence::label_all_tuples(&g, 1, |t| t[0] == w1 || t[0] == w2);
        let vocab = g.vocab().as_ref().clone();
        let candidates = vec![parse("x0 = x1 | x0 = x2", &vocab).unwrap()];
        let ell = 2;
        let (res, elapsed) = timed(|| realizable_k1(&g, &examples, &candidates, ell));
        let res = res.expect("workload is realisable");
        all_ok &= res.mc_calls <= ell * n + 2;
        pts.push((n as f64, res.mc_calls as f64));
        table.row(cells!(
            n,
            ell,
            res.mc_calls,
            ell * n,
            n * n,
            true,
            ms(elapsed)
        ));
    }
    table.print();
    println!();
    println!(
        "log-log slope of mc-calls vs n: {:.2} (≈1 = linear)",
        loglog_slope(&pts)
    );
    verdict(
        all_ok && loglog_slope(&pts) < 1.4,
        "oracle-call count is linear in n (with ℓ and |Φ'| as constants), \
         matching the f(params)·ℓ·n bound of Proposition 12",
    );
}
