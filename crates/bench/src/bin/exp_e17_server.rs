//! E17 — the folearn daemon: result-cache effectiveness under load.
//!
//! Claim: serving the deterministic brute-force learner behind the
//! loopback daemon's LRU result cache makes repeated solves cheap —
//! a cache-warm repeat of an identical solve answers at least 5× faster
//! than the cold computation, returns a bit-identical outcome, and a
//! mixed concurrent workload sustains a nonzero cache hit rate.
//!
//! Writes the measurements (via the shared `write_json_file` writer) to
//! `BENCH_server.json` — or a path given as the first CLI argument.

use std::time::Instant;

use folearn_bench::{
    banner, cells, red_tree, verdict, write_json_file, Json, Table,
};
use folearn_graph::io;
use folearn_server::{
    run_load, start, Client, ClientApi, LoadgenConfig, ServerConfig, SolverSpec,
    WireExample,
};

/// Repeats of the identical (cache-warm) solve; the median is reported.
const WARM_REPEATS: usize = 9;

fn us_since(t: Instant) -> u64 {
    t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_server.json".to_string());
    banner(
        "E17 (folearn-server load)",
        "cache-warm repeat solves answer ≥5× faster than cold ones, \
         bit-identically; a concurrent mixed workload keeps hitting the cache",
    );

    let handle = start(&ServerConfig::default()).expect("daemon starts");
    let addr = handle.addr();
    println!("daemon: {addr}");
    println!();

    let g = red_tree(48, 4, 11);
    let graph_text = io::to_text(&g);

    // --- Cold vs cache-warm latency on one fixed solve ------------------
    let mut client = Client::connect(addr).expect("client connects");
    let structure = client.register(&graph_text).expect("register");
    let sample: Vec<WireExample> = (0..8)
        .map(|i| WireExample {
            tuple: vec![(i * 5) % g.num_vertices() as u32],
            label: i % 2 == 0,
        })
        .collect();
    let solve = |c: &mut Client| {
        c.solve(structure, sample.clone(), 1, 1, 0.0, SolverSpec::default_brute())
            .expect("solve")
    };

    let t0 = Instant::now();
    let cold = solve(&mut client);
    let cold_us = us_since(t0);
    assert!(!cold.cached, "first solve must be computed fresh");

    let mut warm_us: Vec<u64> = (0..WARM_REPEATS)
        .map(|_| {
            let t = Instant::now();
            let warm = solve(&mut client);
            assert!(warm.cached, "repeat solve must be served from cache");
            assert_eq!(
                warm.hypothesis.id, cold.hypothesis.id,
                "cached outcome must be bit-identical"
            );
            assert_eq!(warm.error.to_bits(), cold.error.to_bits());
            us_since(t)
        })
        .collect();
    warm_us.sort_unstable();
    let warm_median_us = warm_us[warm_us.len() / 2];
    let latency_ratio = cold_us as f64 / warm_median_us.max(1) as f64;

    let mut table = Table::new(&["solve", "latency-us"]);
    table.row(cells!("cold", cold_us));
    table.row(cells!("warm (median)", warm_median_us));
    table.row(cells!("ratio", format!("{latency_ratio:.1}x")));
    table.print();
    println!();

    // --- Mixed concurrent workload at rising connection counts ----------
    let mut load_table = Table::new(&[
        "conns", "requests", "errors", "req/s", "cached", "fresh",
        "solve-p50-us",
    ]);
    let mut load_runs = Vec::new();
    for connections in [1usize, 2, 4] {
        let config = LoadgenConfig {
            connections,
            requests_per_conn: 40,
            seed: 17,
            sample_pool: 4,
            ell: 1,
            q: 1,
            ..LoadgenConfig::default()
        };
        let report = run_load(addr, &graph_text, &config);
        let solve_p50 = report
            .ops
            .iter()
            .find(|(op, _)| op == "solve")
            .map(|(_, s)| s.quantile_us(0.50))
            .unwrap_or(0);
        load_table.row(cells!(
            connections,
            report.requests,
            report.errors,
            format!("{:.0}", report.throughput()),
            report.cached_solves,
            report.fresh_solves,
            solve_p50
        ));
        let mut row = vec![("connections".to_string(), Json::int(connections))];
        if let Json::Obj(pairs) = report.to_json() {
            row.extend(pairs);
        }
        load_runs.push(Json::Obj(row));
    }
    load_table.print();

    // --- Daemon-side cache counters across everything above -------------
    let stats = client.stats().expect("stats");
    let cache = stats.get("cache").expect("stats carry a cache block");
    let hits = cache.get("hits").and_then(Json::as_usize).unwrap_or(0);
    let misses = cache.get("misses").and_then(Json::as_usize).unwrap_or(0);
    let hit_rate = cache.get("hit_rate").and_then(Json::as_num).unwrap_or(0.0);
    println!();
    println!("cache: {hits} hits / {misses} misses (rate {hit_rate:.3})");

    handle.shutdown();

    let json = Json::obj([
        ("experiment", Json::str("E17")),
        ("graph_vertices", Json::int(g.num_vertices())),
        ("ell", Json::int(1)),
        ("q", Json::int(1)),
        ("cold_solve_us", Json::int(cold_us as usize)),
        ("warm_solve_median_us", Json::int(warm_median_us as usize)),
        (
            "latency_ratio",
            Json::Num((latency_ratio * 10.0).round() / 10.0),
        ),
        ("cache_hits", Json::int(hits)),
        ("cache_misses", Json::int(misses)),
        (
            "cache_hit_rate",
            Json::Num((hit_rate * 1e4).round() / 1e4),
        ),
        ("load_runs", Json::Arr(load_runs)),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {out_path}");

    let ok = hit_rate > 0.0 && latency_ratio >= 5.0;
    verdict(
        ok,
        "cache-warm repeats are ≥5× faster than cold solves and the mixed \
         workload sustains a nonzero cache hit rate",
    );
    if !ok {
        std::process::exit(1);
    }
}
