//! E16 — parallel speedup of the brute-force ERM engine.
//!
//! Claim: the chunked parallel sweep (sharded arenas + shared pruning
//! bound) returns bit-identical results to the sequential reference and
//! scales near-linearly in cores until arena-merge overhead dominates;
//! pruning cuts tallied work further at no cost in quality.
//!
//! Writes the measurements as JSON (hand-rendered, stable key order) to
//! `BENCH_parallel_erm.json` — or a path given as the first CLI argument —
//! so the perf trajectory is tracked from this PR onward.

use std::fmt::Write as _;
use std::time::Duration;

use folearn::bruteforce::{
    brute_force_erm_sequential, brute_force_erm_with, BruteForceOpts,
    BruteForceResult,
};
use folearn::fit::TypeMode;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_bench::{banner, cells, ms, timed, verdict, Table};
use folearn_graph::V;

const MODE: TypeMode = TypeMode::Local { r: 1 };

/// Best-of-2 timing of one engine run.
fn run_once(
    inst: &ErmInstance<'_>,
    opts: Option<&BruteForceOpts>,
) -> (BruteForceResult, Duration) {
    let mut best: Option<(BruteForceResult, Duration)> = None;
    for _ in 0..2 {
        let arena = shared_arena(inst.graph);
        let (res, t) = timed(|| match opts {
            None => brute_force_erm_sequential(inst, MODE, &arena),
            Some(o) => brute_force_erm_with(inst, MODE, &arena, o),
        });
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((res, t));
        }
    }
    best.expect("two runs always happened")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel_erm.json".to_string());
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    banner(
        "E16 (parallel ERM engine)",
        "the parallel sweep is bit-identical to sequential and speeds up \
         with cores; pruning shrinks tallied work at equal quality",
    );
    println!("host threads: {host_threads}");
    println!();

    let mut table = Table::new(&[
        "n", "engine", "threads", "prune", "time-ms", "speedup", "evaluated",
        "pruned", "err",
    ]);
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"experiment\": \"E16\",");
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    let _ = writeln!(json, "  \"ell\": 2,");
    let _ = writeln!(json, "  \"q\": 1,");
    let _ = writeln!(json, "  \"mode\": \"local r=1\",");
    let _ = writeln!(json, "  \"instances\": [");

    let mut all_deterministic = true;
    let mut best_speedup = 0.0f64;
    let ns = [32usize, 64];
    for (gi, &n) in ns.iter().enumerate() {
        let g = folearn_bench::red_tree(n, 4, 11);
        // Unrealisable pseudo-random labels: no perfect fit, so every
        // engine touches all n^2 tuples and timings measure the sweep.
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t: &[V]| {
            (t[0].0 * 2654435761) % 7 < 3
        });
        let inst = ErmInstance::new(&g, examples, 1, 2, 1, 0.0);

        let (seq, seq_time) = run_once(&inst, None);
        table.row(cells!(
            n,
            "sequential",
            1,
            "off",
            ms(seq_time),
            "1.00",
            seq.evaluated_params,
            seq.pruned_params,
            format!("{:.4}", seq.error)
        ));
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"n\": {n},");
        let _ = writeln!(json, "      \"tuples\": {},", n * n);
        let _ = writeln!(
            json,
            "      \"sequential_ms\": {:.3},",
            seq_time.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"runs\": [");

        let mut rows = Vec::new();
        for threads in [1usize, 2, 4] {
            for prune in [false, true] {
                let opts = BruteForceOpts {
                    threads: Some(threads),
                    prune,
                    block_size: None,
                };
                let (res, t) = run_once(&inst, Some(&opts));
                let identical = res.error.to_bits() == seq.error.to_bits()
                    && res.hypothesis.params() == seq.hypothesis.params();
                all_deterministic &= identical;
                let speedup = seq_time.as_secs_f64() / t.as_secs_f64();
                best_speedup = best_speedup.max(speedup);
                let touched = res.evaluated_params + res.pruned_params;
                table.row(cells!(
                    n,
                    "parallel",
                    threads,
                    if prune { "on" } else { "off" },
                    ms(t),
                    format!("{speedup:.2}"),
                    res.evaluated_params,
                    res.pruned_params,
                    format!("{:.4}", res.error)
                ));
                rows.push(format!(
                    "        {{\"threads\": {threads}, \"prune\": {prune}, \
                     \"ms\": {:.3}, \"speedup\": {speedup:.3}, \
                     \"evaluated\": {}, \"pruned\": {}, \
                     \"prune_rate\": {:.4}, \"bit_identical\": {identical}}}",
                    t.as_secs_f64() * 1e3,
                    res.evaluated_params,
                    res.pruned_params,
                    res.pruned_params as f64 / touched.max(1) as f64,
                ));
            }
        }
        let _ = writeln!(json, "{}", rows.join(",\n"));
        let _ = writeln!(json, "      ]");
        let _ = writeln!(
            json,
            "    }}{}",
            if gi + 1 < ns.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"all_bit_identical\": {all_deterministic},");
    let _ = writeln!(json, "  \"best_speedup\": {best_speedup:.3}");
    json.push_str("}\n");

    table.print();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {out_path}");
    // The determinism claim must hold everywhere; the speedup claim only
    // on multi-core hosts (a 1-core runner honestly reports ~1×).
    let ok = all_deterministic && (host_threads == 1 || best_speedup >= 1.5);
    verdict(
        ok,
        "parallel results are bit-identical; speedup tracks available cores \
         (≈1× on a single-core host)",
    );
}
