//! E16 — parallel speedup of the brute-force ERM engine.
//!
//! Claim: the chunked parallel sweep (sharded arenas + shared pruning
//! bound) returns bit-identical results to the sequential reference and
//! scales near-linearly in cores until arena-merge overhead dominates;
//! pruning cuts tallied work further at no cost in quality.
//!
//! Writes the measurements as JSON (stable key order, via the shared
//! `folearn_bench::write_json_file` writer) to `BENCH_parallel_erm.json` —
//! or a path given as the first CLI argument — so the perf trajectory is
//! tracked from this PR onward.

use std::time::Duration;

use folearn::bruteforce::{
    brute_force_erm_sequential, brute_force_erm_with, BruteForceOpts,
    BruteForceResult,
};
use folearn::fit::TypeMode;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_bench::{
    banner, cells, ms, timed, verdict, write_json_file, Json, Table,
};
use folearn_graph::V;

const MODE: TypeMode = TypeMode::Local { r: 1 };

/// Milliseconds rounded to 3 decimals, as a JSON number.
fn json_ms(d: Duration) -> Json {
    Json::Num((d.as_secs_f64() * 1e6).round() / 1e3)
}

/// A float rounded to 3–4 decimals, as a JSON number.
fn json_round(x: f64, decimals: i32) -> Json {
    let scale = 10f64.powi(decimals);
    Json::Num((x * scale).round() / scale)
}

/// Best-of-2 timing of one engine run.
fn run_once(
    inst: &ErmInstance<'_>,
    opts: Option<&BruteForceOpts>,
) -> (BruteForceResult, Duration) {
    let mut best: Option<(BruteForceResult, Duration)> = None;
    for _ in 0..2 {
        let arena = shared_arena(inst.graph);
        let (res, t) = timed(|| match opts {
            None => brute_force_erm_sequential(inst, MODE, &arena),
            Some(o) => brute_force_erm_with(inst, MODE, &arena, o),
        });
        if best.as_ref().is_none_or(|(_, bt)| t < *bt) {
            best = Some((res, t));
        }
    }
    best.expect("two runs always happened")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_parallel_erm.json".to_string());
    let host_threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    banner(
        "E16 (parallel ERM engine)",
        "the parallel sweep is bit-identical to sequential and speeds up \
         with cores; pruning shrinks tallied work at equal quality",
    );
    println!("host threads: {host_threads}");
    println!();

    let mut table = Table::new(&[
        "n", "engine", "threads", "prune", "time-ms", "speedup", "evaluated",
        "pruned", "err",
    ]);
    let mut instances = Vec::new();
    let mut all_deterministic = true;
    let mut best_speedup = 0.0f64;
    let ns = [32usize, 64];
    for &n in &ns {
        let g = folearn_bench::red_tree(n, 4, 11);
        // Unrealisable pseudo-random labels: no perfect fit, so every
        // engine touches all n^2 tuples and timings measure the sweep.
        let examples = TrainingSequence::label_all_tuples(&g, 1, |t: &[V]| {
            (t[0].0 * 2654435761) % 7 < 3
        });
        let inst = ErmInstance::new(&g, examples, 1, 2, 1, 0.0);

        let (seq, seq_time) = run_once(&inst, None);
        table.row(cells!(
            n,
            "sequential",
            1,
            "off",
            ms(seq_time),
            "1.00",
            seq.evaluated_params,
            seq.pruned_params,
            format!("{:.4}", seq.error)
        ));
        let mut runs = Vec::new();
        for threads in [1usize, 2, 4] {
            for prune in [false, true] {
                let opts = BruteForceOpts {
                    threads: Some(threads),
                    prune,
                    block_size: None,
                };
                let (res, t) = run_once(&inst, Some(&opts));
                let identical = res.error.to_bits() == seq.error.to_bits()
                    && res.hypothesis.params() == seq.hypothesis.params();
                all_deterministic &= identical;
                let speedup = seq_time.as_secs_f64() / t.as_secs_f64();
                best_speedup = best_speedup.max(speedup);
                let touched = res.evaluated_params + res.pruned_params;
                table.row(cells!(
                    n,
                    "parallel",
                    threads,
                    if prune { "on" } else { "off" },
                    ms(t),
                    format!("{speedup:.2}"),
                    res.evaluated_params,
                    res.pruned_params,
                    format!("{:.4}", res.error)
                ));
                runs.push(Json::obj([
                    ("threads", Json::int(threads)),
                    ("prune", Json::Bool(prune)),
                    ("ms", json_ms(t)),
                    ("speedup", json_round(speedup, 3)),
                    ("evaluated", Json::int(res.evaluated_params)),
                    ("pruned", Json::int(res.pruned_params)),
                    (
                        "prune_rate",
                        json_round(
                            res.pruned_params as f64 / touched.max(1) as f64,
                            4,
                        ),
                    ),
                    ("bit_identical", Json::Bool(identical)),
                ]));
            }
        }
        instances.push(Json::obj([
            ("n", Json::int(n)),
            ("tuples", Json::int(n * n)),
            ("sequential_ms", json_ms(seq_time)),
            ("runs", Json::Arr(runs)),
        ]));
    }
    let json = Json::obj([
        ("experiment", Json::str("E16")),
        ("host_threads", Json::int(host_threads)),
        ("ell", Json::int(2)),
        ("q", Json::int(1)),
        ("mode", Json::str("local r=1")),
        ("instances", Json::Arr(instances)),
        ("all_bit_identical", Json::Bool(all_deterministic)),
        ("best_speedup", json_round(best_speedup, 3)),
    ]);

    table.print();
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {out_path}");
    // The determinism claim must hold everywhere; the speedup claim only
    // on multi-core hosts (a 1-core runner honestly reports ~1×).
    let ok = all_deterministic && (host_threads == 1 || best_speedup >= 1.5);
    verdict(
        ok,
        "parallel results are bit-identical; speedup tracks available cores \
         (≈1× on a single-core host)",
    );
}
