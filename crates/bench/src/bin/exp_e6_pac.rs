//! E6 — Section 3 (PAC / uniform convergence).
//!
//! Claim: `|H_{k,ℓ,q}(G)| = f(k,ℓ,q)·n^ℓ`, so ERM on `O(ℓ·log n)` samples
//! generalises: the train/generalisation gap shrinks as `m` grows, and
//! the sample size needed for a fixed gap grows only logarithmically in n.

use folearn::bruteforce::brute_force_erm;
use folearn::fit::TypeMode;
use folearn::pac::{sample_sequence, uniform_convergence_sample_size, QueryDistribution};
use folearn::problem::ErmInstance;
use folearn::shared_arena;
use folearn_bench::{banner, cells, verdict, Table};
use folearn_graph::{ColorId, V};
use folearn_types::census;

fn main() {
    banner(
        "E6 (Section 3: uniform convergence / agnostic PAC)",
        "ERM generalises from O(log |H|) samples; the train-vs-risk gap \
         vanishes with m and approaches the Bayes risk under label noise",
    );

    let g = folearn_bench::red_tree(80, 4, 21);
    let noise = 0.1;
    let target = move |t: &[V]| {
        g.has_color(t[0], ColorId(0))
            || g.neighbors(t[0])
                .iter()
                .any(|&w| g.has_color(V(w), ColorId(0)))
    };
    let g = folearn_bench::red_tree(80, 4, 21);
    let dist = QueryDistribution::new(&g, 1, target, noise);

    // Empirical ln f: the number of realised unary 1-types bounds the
    // formula part of |H|.
    let type_count = {
        let arena = shared_arena(&g);
        let mut a = arena.lock();
        census::count_types(&g, &mut a, 1, 1)
    };
    let ln_f = (2f64).powi(type_count as i32).ln();
    println!(
        "realised 1-types: {type_count}  ⇒ ln f ≤ {ln_f:.2}; \
         m(ε=0.1, δ=0.05) per Section 3:"
    );
    for n in [100usize, 10_000, 1_000_000] {
        println!(
            "  n = {:>9} → m = {}",
            n,
            uniform_convergence_sample_size(ln_f, 1, n, 0.1, 0.05)
        );
    }
    println!();

    let mut table = Table::new(&["m", "train-err", "risk", "gap", "bayes"]);
    let mut gaps = Vec::new();
    for (i, m) in [8usize, 16, 32, 64, 128, 256, 512].iter().enumerate() {
        let examples = sample_sequence(&dist, *m, 400 + i as u64);
        let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
        let arena = shared_arena(&g);
        let res = brute_force_erm(&inst, TypeMode::Global, &arena);
        let risk = dist.exact_risk(|t| res.hypothesis.predict(&g, t));
        let gap = (risk - res.error).abs();
        gaps.push(gap);
        table.row(cells!(
            m,
            format!("{:.3}", res.error),
            format!("{:.3}", risk),
            format!("{:.3}", gap),
            format!("{:.3}", dist.bayes_risk())
        ));
    }
    table.print();
    let early: f64 = gaps[..2].iter().sum::<f64>() / 2.0;
    let late: f64 = gaps[gaps.len() - 2..].iter().sum::<f64>() / 2.0;
    verdict(
        late <= early + 1e-9 && late < 0.08,
        "the generalisation gap shrinks with m and the final risk sits \
         near the Bayes risk — ERM is an agnostic PAC learner",
    );
}
