//! E18 — overhead of the `folearn-obs` tracing spine.
//!
//! Claim: the instrumentation threaded through the learners is free when
//! capture is disabled at runtime (<5% on the E3 brute-force sweep) and
//! cheap when enabled, and it never changes results: traced runs are
//! bit-identical to untraced runs. (Bit-identity with capture *compiled
//! out* is covered by `folearn-obs`'s `--no-default-features` test run
//! in tier 1 — a single binary cannot hold both builds.)
//!
//! Method: each workload (the E3 single-thread sweep, the E16 parallel
//! sweep, the E5-style ND learner) is timed best-of-N with capture
//! disabled and then enabled. The enabled run also yields the span tree,
//! from which we count instrumentation events; multiplying by the
//! micro-benchmarked cost of a *disabled* probe gives a conservative
//! estimate of what the disabled probes cost inside the measured
//! runtime — the compiled-in-but-off overhead the acceptance bound is
//! about. Writes `BENCH_trace_overhead.json` via the shared writer.

use std::hint::black_box;
use std::time::Duration;

use folearn::bruteforce::{brute_force_erm_with, BruteForceOpts};
use folearn::fit::TypeMode;
use folearn::ndlearner::{nd_learn, FinalRule, NdConfig, SearchMode};
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_bench::{
    banner, cells, timed, verdict, write_json_file, Json, Table,
};
use folearn_graph::splitter::GraphClass;
use folearn_graph::{generators, Vocabulary, V};
use folearn_obs::{Counter, SpanRecord};

const REPEATS: usize = 3;

/// Milliseconds rounded to 3 decimals, as a JSON number.
fn json_ms(d: Duration) -> Json {
    Json::Num((d.as_secs_f64() * 1e6).round() / 1e3)
}

fn json_round(x: f64, decimals: i32) -> Json {
    let scale = 10f64.powi(decimals);
    Json::Num((x * scale).round() / scale)
}

/// Instrumentation events behind one recorded span tree: open + close
/// per span, one `count`/`meta` call per recorded entry. BFS probes fire
/// per run even though they merge into one counter entry, so they are
/// added separately by the caller.
fn instr_events(rec: &SpanRecord) -> u64 {
    2 + rec.counters.iter_nonzero().count() as u64
        + rec.meta.len() as u64
        + rec.children.iter().map(instr_events).sum::<u64>()
}

/// Cost of one *disabled* probe, micro-benchmarked: a span open/drop
/// pair and a bare counter bump (both reduce to an atomic flag load).
fn disabled_probe_ns() -> (f64, f64) {
    assert!(!folearn_obs::enabled());
    let iters = 1_000_000u64;
    let (_, t_span) = timed(|| {
        for i in 0..iters {
            let sp = folearn_obs::span("e18.noop");
            black_box(&sp);
            drop(sp);
            black_box(i);
        }
    });
    let (_, t_count) = timed(|| {
        for i in 0..iters {
            folearn_obs::count(Counter::EvaluatedParams, black_box(i & 1));
        }
    });
    (
        t_span.as_secs_f64() * 1e9 / iters as f64,
        t_count.as_secs_f64() * 1e9 / iters as f64,
    )
}

/// Best-of-N timing of one run; returns the best duration and the last
/// run's outcome fingerprint (error bits + learned parameters).
fn measure<F>(run: &F) -> (Duration, (u64, String))
where
    F: Fn() -> (u64, String),
{
    let mut best: Option<Duration> = None;
    let mut outcome = None;
    for _ in 0..REPEATS {
        let (res, t) = timed(run);
        if best.is_none_or(|b| t < b) {
            best = Some(t);
        }
        outcome = Some(res);
        // Keep per-run captures from piling up across repeats.
        let _ = folearn_obs::take_thread_roots();
    }
    (best.unwrap(), outcome.unwrap())
}

/// One workload measured disabled-then-enabled. Returns the JSON record
/// and whether the traced outcome was bit-identical.
fn bench_workload<F>(
    name: &str,
    exact_counters: bool,
    run: F,
    span_ns: f64,
    count_ns: f64,
    table: &mut Table,
) -> (Json, bool, f64)
where
    F: Fn() -> (u64, String),
{
    folearn_obs::set_enabled(false);
    let _ = folearn_obs::take_thread_roots();
    let (t_off, out_off) = measure(&run);

    folearn_obs::set_enabled(true);
    let _ = folearn_obs::take_thread_roots();
    // One extra traced run whose span tree we keep for event counting.
    let (_, first) = timed(&run);
    let roots = folearn_obs::take_thread_roots();
    let (t_on, out_on) = measure(&run);
    let t_on = t_on.min(first);
    folearn_obs::set_enabled(false);

    let identical = out_off == out_on;
    let spans: u64 = roots.iter().map(|r| r.span_count() as u64).sum();
    let bfs_runs: u64 = roots.iter().map(|r| r.total(Counter::BfsRuns)).sum();
    let events: u64 =
        roots.iter().map(instr_events).sum::<u64>() + 2 * bfs_runs;
    // Disabled probes cost: spans pay the open/drop pair, everything
    // else a flag load. Relative to the disabled runtime this bounds the
    // compiled-in-but-off overhead.
    let est_ns = spans as f64 * span_ns + (events - 2 * spans) as f64 * count_ns;
    let disabled_pct = 100.0 * est_ns / (t_off.as_nanos() as f64).max(1.0);
    let enabled_pct =
        100.0 * (t_on.as_secs_f64() / t_off.as_secs_f64() - 1.0);

    table.row(cells!(
        name,
        format!("{:.2}", t_off.as_secs_f64() * 1e3),
        format!("{:.2}", t_on.as_secs_f64() * 1e3),
        format!("{enabled_pct:+.1}"),
        format!("{disabled_pct:.3}"),
        spans,
        identical
    ));
    let json = Json::obj([
        ("workload", Json::str(name)),
        ("repeats", Json::int(REPEATS)),
        ("disabled_ms", json_ms(t_off)),
        ("enabled_ms", json_ms(t_on)),
        ("enabled_overhead_pct", json_round(enabled_pct, 2)),
        ("disabled_overhead_pct", json_round(disabled_pct, 4)),
        ("spans_per_run", Json::int(spans as usize)),
        ("instr_events_per_run", Json::int(events as usize)),
        ("exact_counters", Json::Bool(exact_counters)),
        ("bit_identical", Json::Bool(identical)),
    ]);
    (json, identical, disabled_pct)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace_overhead.json".to_string());
    banner(
        "E18 (tracing overhead)",
        "disabled-at-runtime instrumentation costs <5% on the E3 sweep, \
         enabled capture stays cheap, and traced results are bit-identical",
    );
    assert!(
        !folearn_obs::enabled(),
        "capture must start disabled in a fresh process"
    );
    let (span_ns, count_ns) = disabled_probe_ns();
    println!(
        "disabled probe cost: span pair {span_ns:.1} ns, counter bump {count_ns:.1} ns"
    );
    println!();

    // E3 workload: single-threaded full sweep, ell = 2 (deterministic
    // work accounting, so the whole outcome must match bit for bit).
    let g3 = folearn_bench::red_tree(40, 4, 11);
    let ex3 = TrainingSequence::label_all_tuples(&g3, 1, |t: &[V]| {
        (t[0].0 * 2654435761) % 7 < 3
    });
    let inst3 = ErmInstance::new(&g3, ex3, 1, 2, 1, 0.0);

    // E16 workload: the parallel sweep with pruning on.
    let g16 = folearn_bench::red_tree(64, 4, 11);
    let ex16 = TrainingSequence::label_all_tuples(&g16, 1, |t: &[V]| {
        (t[0].0 * 2654435761) % 7 < 3
    });
    let inst16 = ErmInstance::new(&g16, ex16, 1, 2, 1, 0.0);

    // E5-style workload: the ND learner on a random tree.
    let g5 = generators::random_tree(64, Vocabulary::empty(), 13);
    let w = V(32);
    let target = folearn_bench::near_w_target(&g5, w);
    let ex5 = TrainingSequence::label_all_tuples(&g5, 1, &target);
    let inst5 = ErmInstance::new(&g5, ex5, 1, 1, 1, 0.2);
    let nd_cfg = NdConfig {
        class: GraphClass::Forest,
        search: SearchMode::Exhaustive,
        final_rule: FinalRule::LocalAuto,
        locality_radius: Some(1),
        max_rounds: Some(3),
        max_branches: 80,
    };

    let mut table = Table::new(&[
        "workload", "off-ms", "on-ms", "on-overhead-%", "off-est-%", "spans",
        "identical",
    ]);
    let mut workloads = Vec::new();
    let mut all_identical = true;

    let brute = |inst: &ErmInstance<'_>, opts: BruteForceOpts| {
        let res = brute_force_erm_with(
            inst,
            TypeMode::Local { r: 1 },
            &shared_arena(inst.graph),
            &opts,
        );
        // The single-thread config also fingerprints the work counters
        // (deterministic there; scheduling-dependent with >1 worker).
        let exact = opts.threads == Some(1);
        let counters = if exact {
            format!(":{}:{}", res.evaluated_params, res.pruned_params)
        } else {
            String::new()
        };
        (
            res.error.to_bits(),
            format!("{:?}{counters}", res.hypothesis.params()),
        )
    };

    let (json, ok, e3_disabled_pct) = bench_workload(
        "e3_brute_sweep",
        true,
        || {
            brute(
                &inst3,
                BruteForceOpts {
                    threads: Some(1),
                    prune: true,
                    block_size: None,
                },
            )
        },
        span_ns,
        count_ns,
        &mut table,
    );
    workloads.push(json);
    all_identical &= ok;

    let (json, ok, _) = bench_workload(
        "e16_parallel_sweep",
        false,
        || {
            brute(
                &inst16,
                BruteForceOpts {
                    threads: Some(4),
                    prune: true,
                    block_size: None,
                },
            )
        },
        span_ns,
        count_ns,
        &mut table,
    );
    workloads.push(json);
    all_identical &= ok;

    let (json, ok, _) = bench_workload(
        "nd_learner",
        true,
        || {
            let report = nd_learn(&inst5, &nd_cfg, &shared_arena(&g5));
            (
                report.error.to_bits(),
                format!("{:?}", report.hypothesis.params()),
            )
        },
        span_ns,
        count_ns,
        &mut table,
    );
    workloads.push(json);
    all_identical &= ok;

    table.print();

    let json = Json::obj([
        ("experiment", Json::str("E18")),
        ("repeats", Json::int(REPEATS)),
        ("disabled_span_pair_ns", json_round(span_ns, 2)),
        ("disabled_counter_bump_ns", json_round(count_ns, 2)),
        ("e3_disabled_overhead_pct", json_round(e3_disabled_pct, 4)),
        ("all_bit_identical", Json::Bool(all_identical)),
        ("workloads", Json::Arr(workloads)),
    ]);
    if let Err(e) = write_json_file(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!();
    println!("wrote {out_path}");

    let ok = all_identical && e3_disabled_pct < 5.0;
    verdict(
        ok,
        "traced runs are bit-identical and disabled-at-runtime probes \
         cost well under 5% of the E3 sweep",
    );
}
