//! Shared experiment harness: table rendering, timing, workloads.
//!
//! Each experiment in DESIGN.md's per-experiment index is a binary in
//! `src/bin/exp_*.rs` that prints (a) the paper claim it validates,
//! (b) a table of measurements, and (c) a one-line verdict. The
//! Criterion benchmarks in `benches/` mirror the timing-shaped
//! experiments.

use std::time::{Duration, Instant};

use folearn_graph::{generators, ColorId, Graph, Vocabulary, V};

pub use folearn_server::proto::Json;

/// Write a benchmark result file: pretty-rendered JSON with stable key
/// order (insertion order of [`Json::Obj`]) and a trailing newline.
/// All `BENCH_*.json` artefacts go through this writer so their shape
/// is uniform and diffs stay reviewable.
pub fn write_json_file(path: &str, value: &Json) -> std::io::Result<()> {
    let mut text = value.render_pretty();
    text.push('\n');
    std::fs::write(path, text)
}

/// A simple fixed-width table printer (plain text, machine-greppable).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::new();
            for (w, c) in widths.iter().zip(cells) {
                out.push_str(&format!("{c:>w$}  "));
            }
            println!("{}", out.trim_end());
        };
        line(&self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        println!("{}", "-".repeat(total));
        for row in &self.rows {
            line(row);
        }
    }
}

/// Format cells tersely.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => { &[$(format!("{}", $x)),*] };
}

/// Time a closure, returning `(result, elapsed)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with 2 decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// The least-squares slope of `ln(y)` against `ln(x)` — the polynomial
/// degree estimate used by the scaling experiments.
pub fn loglog_slope(points: &[(f64, f64)]) -> f64 {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|(x, y)| *x > 0.0 && *y > 0.0)
        .map(|(x, y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Standard workload: a random tree with every `stride`-th vertex red.
pub fn red_tree(n: usize, stride: usize, seed: u64) -> Graph {
    let tree = generators::random_tree(n, Vocabulary::new(["Red"]), seed);
    generators::periodically_colored(&tree, ColorId(0), stride)
}

/// Standard workload: a red-striped path.
pub fn red_path(n: usize, stride: usize) -> Graph {
    let g = generators::path(n, Vocabulary::new(["Red"]));
    generators::periodically_colored(&g, ColorId(0), stride)
}

/// Planted target "within distance 1 of the hidden vertex `w`".
pub fn near_w_target(g: &Graph, w: V) -> impl Fn(&[V]) -> bool + '_ {
    move |t: &[V]| t[0] == w || g.has_edge(t[0], w)
}

/// Print the standard experiment banner.
pub fn banner(id: &str, claim: &str) {
    println!("=== {id} ===");
    println!("claim: {claim}");
    println!();
}

/// Print the standard verdict footer.
pub fn verdict(ok: bool, text: &str) {
    println!();
    println!("verdict: {} — {text}", if ok { "PASS" } else { "FAIL" });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_is_two() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, (i * i) as f64)).collect();
        assert!((loglog_slope(&pts) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(cells!(1, 2.5));
        t.print();
    }

    #[test]
    fn red_tree_has_reds() {
        let g = red_tree(20, 4, 1);
        assert!(!g.vertices_with_color(ColorId(0)).is_empty());
    }
}
