//! Criterion bench for E9: global and local q-type computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn::shared_arena;
use folearn_graph::V;
use folearn_types::{compute, local_type};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("type_computation");
    for n in [16usize, 32, 64] {
        let g = folearn_bench::red_path(n, 3);
        group.bench_with_input(BenchmarkId::new("global_q2", n), &n, |b, _| {
            b.iter(|| {
                let arena = shared_arena(&g);
                let mut a = arena.lock();
                compute::type_of(&g, &mut a, &[V(n as u32 / 2)], 2)
            })
        });
        group.bench_with_input(BenchmarkId::new("local_q2_r4", n), &n, |b, _| {
            b.iter(|| {
                let arena = shared_arena(&g);
                let mut a = arena.lock();
                local_type(&g, &mut a, &[V(n as u32 / 2)], 2, 4)
            })
        });
    }
    // Local types on trees: cost tracks the ball, not the graph.
    for n in [100usize, 400, 1600] {
        let g = folearn_bench::red_tree(n, 4, 3);
        group.bench_with_input(BenchmarkId::new("local_on_tree_q1_r2", n), &n, |b, _| {
            b.iter(|| {
                let arena = shared_arena(&g);
                let mut a = arena.lock();
                local_type(&g, &mut a, &[V(n as u32 / 2)], 1, 2)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
