//! Criterion bench: the two model-checking code paths (naive recursive
//! vs type-based) on the same formulas.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn::shared_arena;
use folearn_logic::{eval, parse};
use folearn_types::satisfies::satisfies_via_types;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_checking");
    for n in [16usize, 32, 64] {
        let g = folearn_bench::red_path(n, 3);
        let phi = parse(
            "exists x1. E(x0, x1) & Red(x1) & exists x2. E(x1, x2) & !Red(x2)",
            g.vocab(),
        )
        .unwrap();
        let v = folearn_graph::V(n as u32 / 2);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| eval::satisfies(&g, &phi, &[v]))
        });
        group.bench_with_input(BenchmarkId::new("type_based", n), &n, |b, _| {
            b.iter(|| {
                let arena = shared_arena(&g);
                let mut a = arena.lock();
                satisfies_via_types(&g, &mut a, &phi, &[v])
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
