//! Criterion bench: tree-walking vs compiled-VM formula evaluation on
//! the E3 sweep's formula family — a full-vertex verdict sweep per
//! iteration, which is exactly the inner loop a brute-force parameter
//! sweep pays once per parameter tuple.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn_logic::eval::{self, Assignment};
use folearn_logic::parse;
use folearn_logic::vm::{popcount, Evaluator, Program, VmGraph};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_eval");
    for n in [64usize, 256, 1024] {
        let g = folearn_bench::red_tree(n, 4, 11);
        let phi = parse(
            "exists x1. E(x0, x1) & Red(x1) & exists x2. E(x1, x2) & !Red(x2)",
            g.vocab(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("tree_walk", n), &n, |b, _| {
            b.iter(|| {
                let mut scratch = Assignment::new();
                let mut count = 0usize;
                for v in g.vertices() {
                    if eval::satisfies_with_scratch(&g, &phi, &[v], &mut scratch) {
                        count += 1;
                    }
                }
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("vm_batched", n), &n, |b, _| {
            // Compile once, like the sweep would; each iteration is one
            // batched run over all n lanes.
            let prog = Program::compile(&phi, 0, &[]);
            let vg = VmGraph::new(&g);
            b.iter(|| {
                let mut ev = Evaluator::new(&prog, &vg);
                popcount(ev.run(&[]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
