//! Criterion bench for E1: model checking through the ERM oracle vs
//! directly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn_hardness::{model_check_via_erm, BruteForceOracle};
use folearn_logic::{eval, parse};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardness_reduction");
    group.sample_size(10);
    for n in [6usize, 8, 10] {
        let g = folearn_bench::red_tree(n, 3, 7);
        let phi = parse(
            "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
            g.vocab(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("via_erm_oracle", n), &n, |b, _| {
            b.iter(|| {
                let mut oracle = BruteForceOracle::new();
                model_check_via_erm(&g, &phi, &mut oracle)
            })
        });
        group.bench_with_input(BenchmarkId::new("direct", n), &n, |b, _| {
            b.iter(|| eval::models(&g, &phi))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
