//! Criterion bench for E8: full splitter games under an adversarial
//! Connector, forest vs clique.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn_graph::splitter::{play_game, ForestSplitter, GreedySplitter, MaxBallConnector};
use folearn_graph::{generators, Vocabulary};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitter_game");
    group.sample_size(10);
    for n in [100usize, 400, 1600] {
        let g = generators::random_tree(n, Vocabulary::empty(), 5);
        group.bench_with_input(BenchmarkId::new("forest_r2", n), &n, |b, _| {
            b.iter(|| {
                let mut s = ForestSplitter;
                let mut con = MaxBallConnector;
                play_game(&g, 2, &mut s, &mut con, n + 5)
            })
        });
    }
    for n in [8usize, 16, 32] {
        let g = generators::clique(n, Vocabulary::empty());
        group.bench_with_input(BenchmarkId::new("clique_r2", n), &n, |b, _| {
            b.iter(|| {
                let mut s = GreedySplitter;
                let mut con = MaxBallConnector;
                play_game(&g, 2, &mut s, &mut con, n + 5)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
