//! Criterion bench for E5: the nowhere-dense FPT learner (Theorem 13)
//! versus brute force on growing forests.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn::bruteforce::brute_force_erm;
use folearn::fit::TypeMode;
use folearn::ndlearner::{nd_learn, FinalRule, NdConfig, SearchMode};
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_graph::splitter::GraphClass;
use folearn_graph::{generators, Vocabulary, V};

fn config() -> NdConfig {
    NdConfig {
        class: GraphClass::Forest,
        search: SearchMode::Greedy,
        final_rule: FinalRule::LocalAuto,
        locality_radius: Some(1),
        max_rounds: Some(3),
        max_branches: 40,
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("nd_learner_vs_bruteforce");
    group.sample_size(10);
    for n in [32usize, 64, 128] {
        let g = generators::random_tree(n, Vocabulary::empty(), 13);
        let w = V(n as u32 / 2);
        let target = folearn_bench::near_w_target(&g, w);
        let examples = TrainingSequence::label_all_tuples(&g, 1, &target);
        group.bench_with_input(BenchmarkId::new("nd_learner", n), &n, |b, _| {
            b.iter(|| {
                let inst = ErmInstance::new(&g, examples.clone(), 1, 1, 1, 0.2);
                let arena = shared_arena(&g);
                nd_learn(&inst, &config(), &arena)
            })
        });
        if n <= 64 {
            group.bench_with_input(BenchmarkId::new("bruteforce", n), &n, |b, _| {
                b.iter(|| {
                    let inst = ErmInstance::new(&g, examples.clone(), 1, 1, 1, 0.2);
                    let arena = shared_arena(&g);
                    brute_force_erm(&inst, TypeMode::Global, &arena)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
