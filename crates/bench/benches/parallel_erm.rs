//! Criterion bench for E16: the parallel brute-force ERM engine against
//! the sequential reference, on an `ℓ = 2`, `n = 64` instance (4096
//! parameter tuples). Axes: thread count and pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn::bruteforce::{
    brute_force_erm_sequential, brute_force_erm_with, BruteForceOpts,
};
use folearn::fit::TypeMode;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_graph::V;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_erm");
    group.sample_size(10);
    let n = 64usize;
    let g = folearn_bench::red_tree(n, 4, 11);
    // Pseudo-random labels: unrealisable, so no early perfect-fit exit
    // and the engines sweep (or prune within) all n^2 tuples.
    let examples = TrainingSequence::label_all_tuples(&g, 1, |t: &[V]| {
        (t[0].0 * 2654435761) % 7 < 3
    });
    let inst = ErmInstance::new(&g, examples, 1, 2, 1, 0.0);
    let mode = TypeMode::Local { r: 1 };

    group.bench_function("sequential", |b| {
        b.iter(|| {
            let arena = shared_arena(&g);
            brute_force_erm_sequential(&inst, mode, &arena)
        })
    });
    for threads in [1usize, 2, 4] {
        for (tag, prune) in [("prune", true), ("noprune", false)] {
            group.bench_with_input(
                BenchmarkId::new(format!("parallel-{tag}"), threads),
                &threads,
                |b, &t| {
                    let opts = BruteForceOpts {
                        threads: Some(t),
                        prune,
                        block_size: None,
                    };
                    b.iter(|| {
                        let arena = shared_arena(&g);
                        brute_force_erm_with(&inst, mode, &arena, &opts)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
