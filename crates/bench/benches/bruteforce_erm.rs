//! Criterion bench for E3: brute-force ERM (Proposition 11) across
//! parameter counts ℓ = 0, 1, 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use folearn::bruteforce::brute_force_erm;
use folearn::fit::TypeMode;
use folearn::problem::{ErmInstance, TrainingSequence};
use folearn::shared_arena;
use folearn_graph::V;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("bruteforce_erm");
    group.sample_size(10);
    for ell in [0usize, 1, 2] {
        for n in [16usize, 32] {
            let g = folearn_bench::red_tree(n, 4, 11);
            let examples = TrainingSequence::label_all_tuples(&g, 1, |t: &[V]| {
                (t[0].0 * 2654435761) % 7 < 3
            });
            group.bench_with_input(
                BenchmarkId::new(format!("ell{ell}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let inst =
                            ErmInstance::new(&g, examples.clone(), 1, ell, 1, 0.0);
                        let arena = shared_arena(&g);
                        brute_force_erm(&inst, TypeMode::Local { r: 1 }, &arena)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
