//! Relational schemas, instances, and first-order queries over them.

use std::collections::HashMap;
use std::fmt;

/// A relation symbol with its arity.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RelationDecl {
    /// Relation name (unique within the schema).
    pub name: String,
    /// Arity (≥ 1).
    pub arity: usize,
}

/// A relational schema: an ordered list of relation symbols.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Schema {
    relations: Vec<RelationDecl>,
}

/// Index of a relation within a schema.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct RelId(pub u16);

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a relation symbol.
    ///
    /// # Panics
    /// Panics on duplicate names or zero arity.
    pub fn add_relation(&mut self, name: &str, arity: usize) -> RelId {
        assert!(arity >= 1, "relations must have arity ≥ 1");
        assert!(
            self.relation_by_name(name).is_none(),
            "duplicate relation {name:?}"
        );
        let id = RelId(self.relations.len() as u16);
        self.relations.push(RelationDecl {
            name: name.to_string(),
            arity,
        });
        id
    }

    /// Look up a relation by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelId> {
        self.relations
            .iter()
            .position(|r| r.name == name)
            .map(|i| RelId(i as u16))
    }

    /// The declaration of a relation.
    pub fn decl(&self, id: RelId) -> &RelationDecl {
        &self.relations[id.0 as usize]
    }

    /// All relations, in declaration order.
    pub fn relations(&self) -> impl Iterator<Item = (RelId, &RelationDecl)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, d)| (RelId(i as u16), d))
    }

    /// Maximum arity over the schema (0 if empty).
    pub fn max_arity(&self) -> usize {
        self.relations.iter().map(|r| r.arity).max().unwrap_or(0)
    }
}

/// A domain element of an instance.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Elem(pub u32);

impl fmt::Display for Elem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A database instance: a finite domain with named elements and a set of
/// facts per relation.
#[derive(Clone, Debug)]
pub struct Instance {
    schema: Schema,
    element_names: Vec<String>,
    facts: Vec<Vec<Vec<Elem>>>,
    fact_index: HashMap<(RelId, Vec<Elem>), ()>,
}

impl Instance {
    /// An empty instance over a schema.
    pub fn new(schema: Schema) -> Self {
        let nrel = schema.relations().count();
        Self {
            schema,
            element_names: Vec::new(),
            facts: vec![Vec::new(); nrel],
            fact_index: HashMap::new(),
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Add a named domain element.
    pub fn add_element(&mut self, name: &str) -> Elem {
        let e = Elem(self.element_names.len() as u32);
        self.element_names.push(name.to_string());
        e
    }

    /// The number of domain elements.
    pub fn domain_size(&self) -> usize {
        self.element_names.len()
    }

    /// Iterate over the domain.
    pub fn elements(&self) -> impl ExactSizeIterator<Item = Elem> {
        (0..self.element_names.len() as u32).map(Elem)
    }

    /// Name of an element.
    pub fn element_name(&self, e: Elem) -> &str {
        &self.element_names[e.0 as usize]
    }

    /// Look up an element by name.
    pub fn element_by_name(&self, name: &str) -> Option<Elem> {
        self.element_names
            .iter()
            .position(|n| n == name)
            .map(|i| Elem(i as u32))
    }

    /// Assert a fact `R(ē)`. Duplicate facts are ignored.
    ///
    /// # Panics
    /// Panics on arity mismatch or out-of-domain elements.
    pub fn add_fact(&mut self, rel: RelId, tuple: &[Elem]) {
        assert_eq!(
            tuple.len(),
            self.schema.decl(rel).arity,
            "arity mismatch for {}",
            self.schema.decl(rel).name
        );
        for e in tuple {
            assert!((e.0 as usize) < self.domain_size(), "element out of domain");
        }
        if self
            .fact_index
            .insert((rel, tuple.to_vec()), ())
            .is_none()
        {
            self.facts[rel.0 as usize].push(tuple.to_vec());
        }
    }

    /// Whether `R(ē)` holds.
    pub fn holds(&self, rel: RelId, tuple: &[Elem]) -> bool {
        self.fact_index.contains_key(&(rel, tuple.to_vec()))
    }

    /// All facts of a relation.
    pub fn facts(&self, rel: RelId) -> &[Vec<Elem>] {
        &self.facts[rel.0 as usize]
    }

    /// Bulk-load facts by element *names*, creating unseen elements on
    /// the fly — the convenient path for loading CSV-ish data.
    ///
    /// # Panics
    /// Panics if the relation name is unknown or a row has wrong arity.
    pub fn add_facts_by_name<'a>(
        &mut self,
        relation: &str,
        rows: impl IntoIterator<Item = &'a [&'a str]>,
    ) {
        let rel = self
            .schema
            .relation_by_name(relation)
            .unwrap_or_else(|| panic!("unknown relation {relation:?}"));
        for row in rows {
            let tuple: Vec<Elem> = row
                .iter()
                .map(|name| {
                    self.element_by_name(name)
                        .unwrap_or_else(|| self.add_element(name))
                })
                .collect();
            self.add_fact(rel, &tuple);
        }
    }

    /// Total number of facts.
    pub fn num_facts(&self) -> usize {
        self.facts.iter().map(Vec::len).sum()
    }
}

/// First-order formulas over a relational schema (relational atoms and
/// equality; variables are indices, as in `folearn-logic`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RelFormula {
    /// `⊤` / `⊥`.
    Bool(bool),
    /// `x = y`.
    Eq(u16, u16),
    /// `R(x̄)`.
    Atom(RelId, Vec<u16>),
    /// Negation.
    Not(Box<RelFormula>),
    /// Conjunction.
    And(Vec<RelFormula>),
    /// Disjunction.
    Or(Vec<RelFormula>),
    /// `∃x φ`.
    Exists(u16, Box<RelFormula>),
    /// `∀x φ`.
    Forall(u16, Box<RelFormula>),
}

impl RelFormula {
    /// Quantifier rank.
    pub fn quantifier_rank(&self) -> usize {
        match self {
            RelFormula::Bool(_) | RelFormula::Eq(..) | RelFormula::Atom(..) => 0,
            RelFormula::Not(f) => f.quantifier_rank(),
            RelFormula::And(fs) | RelFormula::Or(fs) => fs
                .iter()
                .map(RelFormula::quantifier_rank)
                .max()
                .unwrap_or(0),
            RelFormula::Exists(_, f) | RelFormula::Forall(_, f) => 1 + f.quantifier_rank(),
        }
    }

    /// Evaluate under an assignment (indexed by variable).
    pub fn eval(&self, inst: &Instance, assignment: &mut Vec<Option<Elem>>) -> bool {
        match self {
            RelFormula::Bool(b) => *b,
            RelFormula::Eq(a, b) => {
                let (x, y) = (require(assignment, *a), require(assignment, *b));
                x == y
            }
            RelFormula::Atom(rel, vars) => {
                let tuple: Vec<Elem> = vars.iter().map(|v| require(assignment, *v)).collect();
                inst.holds(*rel, &tuple)
            }
            RelFormula::Not(f) => !f.eval(inst, assignment),
            RelFormula::And(fs) => fs.iter().all(|f| f.eval(inst, assignment)),
            RelFormula::Or(fs) => fs.iter().any(|f| f.eval(inst, assignment)),
            RelFormula::Exists(v, f) => {
                quantify(inst, *v, f, assignment, true)
            }
            RelFormula::Forall(v, f) => {
                quantify(inst, *v, f, assignment, false)
            }
        }
    }

    /// Evaluate with `x0 … x{k−1}` bound to `tuple`.
    pub fn satisfies(&self, inst: &Instance, tuple: &[Elem]) -> bool {
        let mut a: Vec<Option<Elem>> = tuple.iter().map(|&e| Some(e)).collect();
        self.eval(inst, &mut a)
    }

    /// Render with relation names from a schema.
    pub fn render(&self, schema: &Schema) -> String {
        match self {
            RelFormula::Bool(true) => "true".into(),
            RelFormula::Bool(false) => "false".into(),
            RelFormula::Eq(a, b) => format!("x{a} = x{b}"),
            RelFormula::Atom(rel, vars) => {
                let args: Vec<String> = vars.iter().map(|v| format!("x{v}")).collect();
                format!("{}({})", schema.decl(*rel).name, args.join(", "))
            }
            RelFormula::Not(f) => format!("!({})", f.render(schema)),
            RelFormula::And(fs) => fs
                .iter()
                .map(|f| format!("({})", f.render(schema)))
                .collect::<Vec<_>>()
                .join(" & "),
            RelFormula::Or(fs) => fs
                .iter()
                .map(|f| format!("({})", f.render(schema)))
                .collect::<Vec<_>>()
                .join(" | "),
            RelFormula::Exists(v, f) => format!("exists x{v}. {}", f.render(schema)),
            RelFormula::Forall(v, f) => format!("forall x{v}. {}", f.render(schema)),
        }
    }
}

fn require(assignment: &[Option<Elem>], var: u16) -> Elem {
    assignment
        .get(var as usize)
        .copied()
        .flatten()
        .unwrap_or_else(|| panic!("variable x{var} unassigned"))
}

fn quantify(
    inst: &Instance,
    var: u16,
    body: &RelFormula,
    assignment: &mut Vec<Option<Elem>>,
    existential: bool,
) -> bool {
    let idx = var as usize;
    if idx >= assignment.len() {
        assignment.resize(idx + 1, None);
    }
    let saved = assignment[idx];
    let mut result = !existential;
    for e in inst.elements() {
        assignment[idx] = Some(e);
        let holds = body.eval(inst, assignment);
        if existential && holds {
            result = true;
            break;
        }
        if !existential && !holds {
            result = false;
            break;
        }
    }
    assignment[idx] = saved;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_instance() -> (Instance, RelId, RelId) {
        let mut schema = Schema::new();
        let works_in = schema.add_relation("WorksIn", 2);
        let senior = schema.add_relation("Senior", 1);
        let mut inst = Instance::new(schema);
        let a = inst.add_element("alice");
        let b = inst.add_element("bob");
        let d = inst.add_element("dept");
        inst.add_fact(works_in, &[a, d]);
        inst.add_fact(works_in, &[b, d]);
        inst.add_fact(senior, &[a]);
        (inst, works_in, senior)
    }

    #[test]
    fn facts_dedup_and_hold() {
        let (mut inst, works_in, senior) = small_instance();
        let a = inst.element_by_name("alice").unwrap();
        let d = inst.element_by_name("dept").unwrap();
        inst.add_fact(works_in, &[a, d]); // duplicate
        assert_eq!(inst.num_facts(), 3);
        assert!(inst.holds(works_in, &[a, d]));
        assert!(!inst.holds(senior, &[d]));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let (mut inst, works_in, _) = small_instance();
        let a = inst.element_by_name("alice").unwrap();
        inst.add_fact(works_in, &[a]);
    }

    #[test]
    fn query_evaluation() {
        let (inst, works_in, senior) = small_instance();
        // "x0 works in some department with a senior member"
        let phi = RelFormula::Exists(
            1,
            Box::new(RelFormula::And(vec![
                RelFormula::Atom(works_in, vec![0, 1]),
                RelFormula::Exists(
                    2,
                    Box::new(RelFormula::And(vec![
                        RelFormula::Atom(works_in, vec![2, 1]),
                        RelFormula::Atom(senior, vec![2]),
                    ])),
                ),
            ])),
        );
        let a = inst.element_by_name("alice").unwrap();
        let b = inst.element_by_name("bob").unwrap();
        let d = inst.element_by_name("dept").unwrap();
        assert!(phi.satisfies(&inst, &[a]));
        assert!(phi.satisfies(&inst, &[b]));
        assert!(!phi.satisfies(&inst, &[d]));
        assert_eq!(phi.quantifier_rank(), 2);
    }

    #[test]
    fn bulk_loading_by_name() {
        let mut schema = Schema::new();
        schema.add_relation("Likes", 2);
        let mut inst = Instance::new(schema);
        inst.add_facts_by_name(
            "Likes",
            [&["ann", "bob"][..], &["bob", "cat"][..], &["ann", "bob"][..]],
        );
        assert_eq!(inst.domain_size(), 3);
        assert_eq!(inst.num_facts(), 2);
        let likes = inst.schema().relation_by_name("Likes").unwrap();
        let ann = inst.element_by_name("ann").unwrap();
        let bob = inst.element_by_name("bob").unwrap();
        assert!(inst.holds(likes, &[ann, bob]));
    }

    #[test]
    fn rendering_uses_relation_names() {
        let mut schema = Schema::new();
        let r = schema.add_relation("Likes", 2);
        let phi = RelFormula::Exists(
            1,
            Box::new(RelFormula::And(vec![
                RelFormula::Atom(r, vec![0, 1]),
                RelFormula::Not(Box::new(RelFormula::Eq(0, 1))),
            ])),
        );
        let s = phi.render(&schema);
        assert!(s.contains("Likes(x0, x1)"));
        assert!(s.contains("exists x1."));
    }

    #[test]
    fn forall_and_equality() {
        let (inst, _, senior) = small_instance();
        let all_senior = RelFormula::Forall(0, Box::new(RelFormula::Atom(senior, vec![0])));
        assert!(!all_senior.eval(&inst, &mut Vec::new()));
        let some_eq = RelFormula::Exists(
            0,
            Box::new(RelFormula::Exists(
                1,
                Box::new(RelFormula::Not(Box::new(RelFormula::Eq(0, 1)))),
            )),
        );
        assert!(some_eq.eval(&inst, &mut Vec::new()));
    }
}
