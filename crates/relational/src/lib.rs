//! Relational databases as coloured graphs.
//!
//! The paper states its results for coloured graphs and notes that "all
//! results can easily be extended to arbitrary relational structures …
//! by coding relational structures as graphs" (Section 2). This crate
//! implements that coding, so `folearn` learns first-order queries over
//! honest relational database instances:
//!
//! * [`schema`] — relational schemas, instances (facts over a finite
//!   domain), and a first-order query language `RelFormula` over them,
//!   with a direct evaluator;
//! * [`encode`] — the incidence encoding into coloured graphs: one vertex
//!   per domain element, one per fact, one per (fact, position) pair,
//!   with colours identifying relations and positions; plus the matching
//!   query translation `RelFormula → Formula` whose satisfaction is
//!   preserved (cross-checked by tests);
//! * [`demo`] — a small employees/departments instance used by the
//!   examples.

pub mod demo;
pub mod encode;
pub mod schema;

pub use encode::{encode_instance, translate_query, EncodedInstance};
pub use schema::{Instance, RelFormula, Schema};
