//! The incidence encoding of relational instances as coloured graphs,
//! with the matching query translation.
//!
//! Encoding of an instance `D` over schema `σ`:
//!
//! * one *element vertex* per domain element, coloured `__Elem`;
//! * one *fact vertex* per fact `R(ē)`, coloured `__Rel_R`;
//! * one *position vertex* per (fact, argument position `i`), coloured
//!   `__Pos{i}`, adjacent to its fact vertex and to the element filling
//!   the position.
//!
//! The encoding is linear in `|D|`, degree-bounded by
//! `max(arity, #facts per element)`, and preserves sparsity: instances
//! whose incidence structure is tree-like/bounded-degree encode into
//! nowhere dense graph classes, which is what lets the Theorem 13 learner
//! run over databases.
//!
//! [`translate_query`] maps a relational FO query `φ` to a graph query
//! `φ'` with `qr(φ') ≤ qr(φ) + 2` such that
//! `D ⊨ φ(ē) ⟺ enc(D) ⊨ φ'(enc(ē))` — property (verified in tests) that
//! makes learning over `enc(D)` equivalent to learning over `D`.

use folearn::problem::{Example, TrainingSequence};
use folearn_graph::{ColorId, Graph, GraphBuilder, Vocabulary, V};
use folearn_logic::{Formula, Var};

use crate::schema::{Elem, Instance, RelFormula, RelId};

/// A relational instance encoded as a coloured graph.
pub struct EncodedInstance {
    /// The incidence graph.
    pub graph: Graph,
    /// Colour of element vertices.
    pub elem_color: ColorId,
    /// Colour per relation (indexed by `RelId`).
    pub rel_colors: Vec<ColorId>,
    /// Colour per argument position `0 … max_arity−1`.
    pub pos_colors: Vec<ColorId>,
    domain_size: usize,
}

impl EncodedInstance {
    /// The vertex representing a domain element (elements occupy the
    /// first `|dom|` vertex ids).
    pub fn element_vertex(&self, e: Elem) -> V {
        assert!((e.0 as usize) < self.domain_size, "element out of domain");
        V(e.0)
    }

    /// Map an element tuple into the graph.
    pub fn map_tuple(&self, tuple: &[Elem]) -> Vec<V> {
        tuple.iter().map(|&e| self.element_vertex(e)).collect()
    }

    /// Convert labelled element-tuples into a graph training sequence.
    pub fn to_training_sequence(
        &self,
        pairs: impl IntoIterator<Item = (Vec<Elem>, bool)>,
    ) -> TrainingSequence {
        pairs
            .into_iter()
            .map(|(t, l)| Example::new(self.map_tuple(&t), l))
            .collect()
    }
}

/// Encode an instance.
pub fn encode_instance(inst: &Instance) -> EncodedInstance {
    let mut vocab = Vocabulary::empty();
    let elem_color = vocab.add_color("__Elem");
    let rel_colors: Vec<ColorId> = inst
        .schema()
        .relations()
        .map(|(_, d)| vocab.add_color(&format!("__Rel_{}", d.name)))
        .collect();
    let pos_colors: Vec<ColorId> = (0..inst.schema().max_arity())
        .map(|i| vocab.add_color(&format!("__Pos{i}")))
        .collect();

    let mut b = GraphBuilder::new(vocab);
    for _ in inst.elements() {
        let v = b.add_vertex();
        b.set_color(v, elem_color);
    }
    for (rel, _) in inst.schema().relations() {
        for fact in inst.facts(rel) {
            let f = b.add_vertex();
            b.set_color(f, rel_colors[rel.0 as usize]);
            for (i, &e) in fact.iter().enumerate() {
                let p = b.add_vertex();
                b.set_color(p, pos_colors[i]);
                b.add_edge(f, p);
                b.add_edge(p, V(e.0));
            }
        }
    }
    EncodedInstance {
        graph: b.build(),
        elem_color,
        rel_colors,
        pos_colors,
        domain_size: inst.domain_size(),
    }
}

/// Translate a relational query into a graph query over the encoding.
///
/// Quantifiers are relativised to element vertices; each relational atom
/// `R(x̄)` becomes
/// `∃f (Rel_R(f) ∧ ⋀_i ∃p (Pos_i(p) ∧ E(f,p) ∧ E(p,x_i)))`.
pub fn translate_query(phi: &RelFormula, enc: &EncodedInstance) -> Formula {
    let fresh = (max_var(phi).map_or(0, |m| m + 1)).max(1);
    go(phi, enc, fresh)
}

fn max_var(phi: &RelFormula) -> Option<Var> {
    match phi {
        RelFormula::Bool(_) => None,
        RelFormula::Eq(a, b) => Some(*a.max(b)),
        RelFormula::Atom(_, vars) => vars.iter().copied().max(),
        RelFormula::Not(f) => max_var(f),
        RelFormula::And(fs) | RelFormula::Or(fs) => fs.iter().filter_map(max_var).max(),
        RelFormula::Exists(v, f) | RelFormula::Forall(v, f) => {
            Some(max_var(f).map_or(*v, |m| m.max(*v)))
        }
    }
}

fn go(phi: &RelFormula, enc: &EncodedInstance, fresh: Var) -> Formula {
    match phi {
        RelFormula::Bool(b) => Formula::Bool(*b),
        RelFormula::Eq(a, b) => Formula::Eq(*a, *b),
        RelFormula::Atom(rel, vars) => atom_formula(*rel, vars, enc, fresh),
        RelFormula::Not(f) => go(f, enc, fresh).not(),
        RelFormula::And(fs) => Formula::and(fs.iter().map(|f| go(f, enc, fresh))),
        RelFormula::Or(fs) => Formula::or(fs.iter().map(|f| go(f, enc, fresh))),
        RelFormula::Exists(v, f) => Formula::exists(
            *v,
            Formula::and([Formula::Color(enc.elem_color, *v), go(f, enc, fresh)]),
        ),
        RelFormula::Forall(v, f) => Formula::forall(
            *v,
            Formula::Color(enc.elem_color, *v).implies(go(f, enc, fresh)),
        ),
    }
}

fn atom_formula(rel: RelId, vars: &[Var], enc: &EncodedInstance, fresh: Var) -> Formula {
    let f_var = fresh;
    let p_var = fresh + 1;
    let rel_color = enc.rel_colors[rel.0 as usize];
    let mut parts = vec![Formula::Color(rel_color, f_var)];
    for (i, &x) in vars.iter().enumerate() {
        parts.push(Formula::exists(
            p_var,
            Formula::and([
                Formula::Color(enc.pos_colors[i], p_var),
                Formula::Edge(f_var, p_var),
                Formula::Edge(p_var, x),
            ]),
        ));
    }
    Formula::exists(f_var, Formula::and(parts))
}

#[cfg(test)]
mod tests {
    use folearn_logic::eval;

    use crate::demo;
    use crate::schema::{RelFormula, Schema};

    use super::*;

    #[test]
    fn encoding_shape() {
        let mut schema = Schema::new();
        let r = schema.add_relation("R", 2);
        let mut inst = Instance::new(schema);
        let a = inst.add_element("a");
        let b2 = inst.add_element("b");
        inst.add_fact(r, &[a, b2]);
        let enc = encode_instance(&inst);
        // 2 elements + 1 fact + 2 positions.
        assert_eq!(enc.graph.num_vertices(), 5);
        assert_eq!(enc.graph.num_edges(), 4);
        assert!(enc.graph.has_color(enc.element_vertex(a), enc.elem_color));
    }

    #[test]
    fn translation_preserves_satisfaction() {
        let (inst, rels) = demo::employees();
        let enc = encode_instance(&inst);
        let works_in = rels.works_in;
        let senior = rels.senior;
        let queries = vec![
            // "x0 is senior"
            RelFormula::Atom(senior, vec![0]),
            // "x0 works somewhere"
            RelFormula::Exists(1, Box::new(RelFormula::Atom(works_in, vec![0, 1]))),
            // "x0 shares a department with a senior employee"
            RelFormula::Exists(
                1,
                Box::new(RelFormula::And(vec![
                    RelFormula::Atom(works_in, vec![0, 1]),
                    RelFormula::Exists(
                        2,
                        Box::new(RelFormula::And(vec![
                            RelFormula::Atom(works_in, vec![2, 1]),
                            RelFormula::Atom(senior, vec![2]),
                        ])),
                    ),
                ])),
            ),
            // "everything equals x0" (false on multi-element domains)
            RelFormula::Forall(1, Box::new(RelFormula::Eq(0, 1))),
        ];
        for phi in queries {
            let translated = translate_query(&phi, &enc);
            for e in inst.elements() {
                assert_eq!(
                    phi.satisfies(&inst, &[e]),
                    eval::satisfies(&enc.graph, &translated, &[enc.element_vertex(e)]),
                    "query {phi:?} at {e}"
                );
            }
        }
    }

    #[test]
    fn quantifier_rank_grows_by_at_most_two() {
        let (inst, rels) = demo::employees();
        let enc = encode_instance(&inst);
        let phi = RelFormula::Exists(
            1,
            Box::new(RelFormula::Atom(rels.works_in, vec![0, 1])),
        );
        let translated = translate_query(&phi, &enc);
        assert!(translated.quantifier_rank() <= phi.quantifier_rank() + 2);
    }

    #[test]
    fn training_sequence_maps_elements() {
        let (inst, rels) = demo::employees();
        let enc = encode_instance(&inst);
        let e0 = inst.elements().next().unwrap();
        let seq = enc.to_training_sequence([(vec![e0], inst.holds(rels.senior, &[e0]))]);
        assert_eq!(seq.len(), 1);
        assert_eq!(seq.examples()[0].tuple, vec![enc.element_vertex(e0)]);
    }
}
