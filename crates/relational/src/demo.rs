//! A small employees/departments instance used by tests and examples.

use crate::schema::{Elem, Instance, RelId, Schema};

/// Relation handles of the demo schema.
pub struct DemoRels {
    /// `WorksIn(employee, department)`.
    pub works_in: RelId,
    /// `Senior(employee)`.
    pub senior: RelId,
    /// `Manages(manager, employee)`.
    pub manages: RelId,
}

/// Build the demo instance: three departments, eight employees, a
/// management chain, and a few senior staff.
pub fn employees() -> (Instance, DemoRels) {
    let mut schema = Schema::new();
    let works_in = schema.add_relation("WorksIn", 2);
    let senior = schema.add_relation("Senior", 1);
    let manages = schema.add_relation("Manages", 2);
    let mut inst = Instance::new(schema);

    let depts: Vec<Elem> = ["sales", "eng", "hr"]
        .iter()
        .map(|d| inst.add_element(d))
        .collect();
    let people: Vec<Elem> = [
        "alice", "bob", "carol", "dave", "erin", "frank", "grace", "henry",
    ]
    .iter()
    .map(|p| inst.add_element(p))
    .collect();

    // Department membership.
    for (i, &p) in people.iter().enumerate() {
        inst.add_fact(works_in, &[p, depts[i % 3]]);
    }
    // Seniors: alice, dave.
    inst.add_fact(senior, &[people[0]]);
    inst.add_fact(senior, &[people[3]]);
    // Management chain: alice → bob → carol, dave → erin.
    inst.add_fact(manages, &[people[0], people[1]]);
    inst.add_fact(manages, &[people[1], people[2]]);
    inst.add_fact(manages, &[people[3], people[4]]);

    (
        inst,
        DemoRels {
            works_in,
            senior,
            manages,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_is_well_formed() {
        let (inst, rels) = employees();
        assert_eq!(inst.domain_size(), 11);
        assert_eq!(inst.facts(rels.works_in).len(), 8);
        assert_eq!(inst.facts(rels.senior).len(), 2);
        assert_eq!(inst.facts(rels.manages).len(), 3);
        let alice = inst.element_by_name("alice").unwrap();
        assert!(inst.holds(rels.senior, &[alice]));
    }
}
