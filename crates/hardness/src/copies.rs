//! The generalised Claim 8: distinguishing two vertices with an oracle
//! that returns parameters (`L(1,0,q) > 0`).
//!
//! If the ERM oracle cannot be forced to return parameter-free
//! hypotheses, the paper builds `Ĝ` = `2ℓ` disjoint copies of `G`, labels
//! the copies `(u^{(i)}, 0), (v^{(i)}, 1)`, and calls the oracle with
//! `ε = 1/8`. The answer has at most `ℓ` parameters and errs on at most
//! `2ℓ/8` copies, so some copy `i°` is neither *covered* (contains a
//! parameter) nor *wrong*; restricted to that copy the answer behaves
//! like a parameter-free distinguisher of `u` and `v`. Locality (the
//! returned classification of an uncovered copy cannot depend on the
//! markers sitting in other copies) then transfers the distinguisher back
//! to `G` itself.
//!
//! We materialise the construction and return the copy-restricted
//! predictor; tests verify it distinguishes exactly when the types
//! differ, which is all the reduction consumes.

use folearn::{ErmInstance, Example, TrainingSequence};
use folearn_graph::{ops, Graph, V};

use crate::oracle::{ErmOracle, OracleAnswer};

/// Outcome of the disjoint-copies construction.
pub struct CopiesDistinguisher {
    /// The union graph `Ĝ` of `2ℓ` copies.
    pub union: Graph,
    /// Offset of each copy within `Ĝ`.
    pub offsets: Vec<u32>,
    /// The oracle's answer on `Ĝ`.
    pub answer: OracleAnswer,
    /// The chosen copy `i°` (neither covered nor wrong), if one exists.
    pub clean_copy: Option<usize>,
}

impl CopiesDistinguisher {
    /// Evaluate the extracted distinguisher on a vertex of the *original*
    /// graph by lifting it into the clean copy.
    ///
    /// # Panics
    /// Panics if no clean copy exists.
    pub fn predict(&self, v: V) -> bool {
        let i = self.clean_copy.expect("no clean copy available");
        let lifted = V(self.offsets[i] + v.0);
        self.answer.predict(&self.union, &[lifted])
    }
}

/// Run the generalised Claim 8 for vertices `u, v` of `g`, with an oracle
/// allowed `ell ≥ 1` parameters and quantifier rank `q_star`.
pub fn distinguish_via_copies(
    g: &Graph,
    u: V,
    v: V,
    ell: usize,
    q_star: usize,
    oracle: &mut dyn ErmOracle,
) -> CopiesDistinguisher {
    assert!(ell >= 1);
    let copies = 2 * ell;
    let (union, offsets) = ops::disjoint_copies(g, copies);
    let mut examples = TrainingSequence::new();
    for &off in &offsets {
        examples.push(Example::new(vec![V(off + u.0)], false));
        examples.push(Example::new(vec![V(off + v.0)], true));
    }
    let inst = ErmInstance::new(&union, examples, 1, ell, q_star, 1.0 / 8.0);
    let answer = oracle.solve(&inst);

    // A copy is covered if a parameter lands in it, wrong if the answer
    // misclassifies its u- or v-example.
    let n = g.num_vertices() as u32;
    let clean_copy = (0..copies).find(|&i| {
        let off = offsets[i];
        let covered = answer
            .params()
            .iter()
            .any(|p| p.0 >= off && p.0 < off + n);
        if covered {
            return false;
        }
        let u_ok = !answer.predict(&union, &[V(off + u.0)]);
        let v_ok = answer.predict(&union, &[V(off + v.0)]);
        u_ok && v_ok
    });

    CopiesDistinguisher {
        union,
        offsets,
        answer,
        clean_copy,
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use crate::oracle::BruteForceOracle;

    use super::*;

    #[test]
    fn clean_copy_distinguishes_different_types() {
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(6, vocab),
            ColorId(0),
            3,
        );
        let mut oracle = BruteForceOracle::new();
        // u = plain vertex, v = red vertex: types differ already at q = 0.
        let d = distinguish_via_copies(&g, V(1), V(3), 1, 0, &mut oracle);
        let copy = d.clean_copy.expect("a clean copy must exist");
        assert!(copy < 2);
        assert!(!d.predict(V(1)));
        assert!(d.predict(V(3)));
    }

    #[test]
    fn works_with_more_parameters() {
        let g = generators::path(5, Vocabulary::empty());
        let mut oracle = BruteForceOracle::new();
        // Endpoint vs midpoint needs q = 2 without colours.
        let d = distinguish_via_copies(&g, V(0), V(2), 2, 2, &mut oracle);
        assert!(d.clean_copy.is_some());
        assert!(!d.predict(V(0)));
        assert!(d.predict(V(2)));
        assert_eq!(d.offsets.len(), 4);
    }

    #[test]
    fn union_has_expected_shape() {
        let g = generators::cycle(4, Vocabulary::empty());
        let mut oracle = BruteForceOracle::new();
        let d = distinguish_via_copies(&g, V(0), V(1), 1, 1, &mut oracle);
        assert_eq!(d.union.num_vertices(), 8);
        assert_eq!(d.union.num_edges(), 8);
    }
}
