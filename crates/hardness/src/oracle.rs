//! The ERM-oracle interface consumed by the reduction.
//!
//! An `(L,Q)-FO-ERM` oracle takes a graph, a training sequence and the
//! hyper-parameters `(k, ℓ*, q*, ε)` and returns *some* hypothesis whose
//! training error is within `ε` of the class optimum. The reduction only
//! ever needs unary instances (`k = 1, ℓ* = 0`), evaluates the returned
//! hypothesis on vertices, and groups answers by identity (the Ramsey
//! step) — so an answer is a *predictor* plus a canonical key. The
//! predictor may live in this process ([`Predictor::Local`], a real
//! [`Hypothesis`]) or behind a folearn daemon ([`Predictor::Remote`],
//! evaluated over the wire) — the reduction cannot tell the difference,
//! which is the point: Lemma 7 treats the learner as a black box.

use std::collections::HashMap;
use std::sync::Arc;

use folearn::bruteforce::brute_force_erm;
use folearn::fit::TypeMode;
use folearn::{ErmInstance, Hypothesis};
#[cfg(test)]
use folearn::TrainingSequence;
use folearn_graph::{io, Graph, V};
use folearn_server::{
    ClientApi, ClientConfig, ClientError, RetryPolicy, RetryingClient, SolverSpec,
    TransportStats, WireExample,
};
use folearn_types::TypeArena;
use parking_lot::Mutex;

/// How an oracle answer classifies tuples.
#[derive(Clone)]
pub enum Predictor {
    /// An in-process hypothesis (its arena travels with it).
    Local(Hypothesis),
    /// A hypothesis stored on a folearn daemon; predictions go over the
    /// wire through the shared connection. Type ids are only meaningful
    /// inside the server's arena, so the hypothesis cannot be
    /// reconstructed locally — exactly the oracle-as-black-box regime.
    Remote {
        /// Shared connection to the daemon that owns the hypothesis
        /// (self-healing: deadlines, backoff, reconnect — so a dropped
        /// frame mid-reduction costs a retry, not the whole run).
        client: Arc<Mutex<RetryingClient>>,
        /// Content hash of the structure the hypothesis was learned on.
        structure: u64,
        /// Server-assigned hypothesis id.
        hypothesis: u64,
        /// The hypothesis's parameter vertices (reported on the wire;
        /// the disjoint-copies argument inspects them).
        params: Vec<V>,
    },
}

/// An oracle answer: an evaluable predictor with a comparable identity.
#[derive(Clone)]
pub struct OracleAnswer {
    /// The returned predictor for `h_{φ,w̄}`.
    pub predictor: Predictor,
    /// Identity key for grouping equal answers (stable within one oracle
    /// because the oracle shares one type arena per vocabulary — the
    /// server mirrors this discipline for remote answers).
    pub key: u64,
    /// Whether the instance was realisable (`ε* = 0`) — instrumentation
    /// for Remark 10.
    pub realizable: bool,
}

impl OracleAnswer {
    /// Evaluate the answer on a tuple of the queried graph.
    ///
    /// # Panics
    /// For remote answers, panics if the connection fails mid-reduction
    /// (the trait has no error channel; a dead oracle is fatal anyway).
    pub fn predict(&self, g: &Graph, tuple: &[V]) -> bool {
        match &self.predictor {
            Predictor::Local(h) => h.predict(g, tuple),
            Predictor::Remote {
                client,
                structure,
                hypothesis,
                ..
            } => {
                let wire_tuple: Vec<u32> = tuple.iter().map(|v| v.0).collect();
                let (labels, _) = client
                    .lock()
                    .evaluate(*structure, *hypothesis, vec![wire_tuple], None)
                    .expect("remote predict failed");
                labels[0]
            }
        }
    }

    /// The hypothesis's parameter vertices.
    pub fn params(&self) -> &[V] {
        match &self.predictor {
            Predictor::Local(h) => h.params(),
            Predictor::Remote { params, .. } => params,
        }
    }

    /// The in-process hypothesis, when there is one.
    pub fn hypothesis(&self) -> Option<&Hypothesis> {
        match &self.predictor {
            Predictor::Local(h) => Some(h),
            Predictor::Remote { .. } => None,
        }
    }
}

/// An `(L,Q)-FO-ERM` oracle.
pub trait ErmOracle {
    /// Solve the instance; the answer's training error must be within
    /// `inst.epsilon` of optimal **whenever the instance is realisable**
    /// (Remark 10: the reduction tolerates arbitrary answers otherwise).
    fn solve(&mut self, inst: &ErmInstance<'_>) -> OracleAnswer;

    /// Number of `solve` calls so far.
    fn calls(&self) -> usize;

    /// Number of calls whose instance was realisable.
    fn realizable_calls(&self) -> usize;
}

/// The honest oracle: exhaustive ERM (Proposition 11), exact on every
/// instance. One type arena is kept per vocabulary so that hypothesis
/// keys are comparable across calls on the same (expanded) graph.
pub struct BruteForceOracle {
    arenas: HashMap<usize, Arc<Mutex<TypeArena>>>,
    key_table: HashMap<(Vec<folearn_types::TypeId>, Vec<V>, usize), u64>,
    calls: usize,
    realizable: usize,
}

impl Default for BruteForceOracle {
    fn default() -> Self {
        Self::new()
    }
}

impl BruteForceOracle {
    /// A fresh oracle.
    pub fn new() -> Self {
        Self {
            arenas: HashMap::new(),
            key_table: HashMap::new(),
            calls: 0,
            realizable: 0,
        }
    }

    fn arena_for(&mut self, g: &Graph) -> Arc<Mutex<TypeArena>> {
        // Key arenas by the vocabulary's colour count: the reduction only
        // ever queries one vocabulary per colour count (the base graph and
        // its per-level expansions), and types across different graphs
        // over the same vocabulary must share an arena to be comparable.
        let key = g.vocab().num_colors();
        Arc::clone(
            self.arenas
                .entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(TypeArena::new(Arc::clone(g.vocab()))))),
        )
    }

    fn key_of(&mut self, h: &Hypothesis) -> u64 {
        let (types, params, q, _) = h.canonical_key();
        let next = self.key_table.len() as u64;
        *self.key_table.entry((types, params, q)).or_insert(next)
    }
}

impl ErmOracle for BruteForceOracle {
    fn solve(&mut self, inst: &ErmInstance<'_>) -> OracleAnswer {
        self.calls += 1;
        let arena = self.arena_for(inst.graph);
        let res = brute_force_erm(inst, TypeMode::Global, &arena);
        let realizable = res.error == 0.0;
        if realizable {
            self.realizable += 1;
        }
        let key = self.key_of(&res.hypothesis);
        OracleAnswer {
            predictor: Predictor::Local(res.hypothesis),
            key,
            realizable,
        }
    }

    fn calls(&self) -> usize {
        self.calls
    }

    fn realizable_calls(&self) -> usize {
        self.realizable
    }
}

/// An ERM oracle backed by a folearn daemon (`folearn serve`): every
/// `solve` registers the instance's graph (content-addressed, so
/// repeats are free) and runs the server's deterministic brute-force
/// solver; answers classify tuples over the wire.
///
/// Key parity with [`BruteForceOracle`]: the key table partitions
/// answers by `(type_keys, params, q)`, where `type_keys` are the
/// *canonical* content hashes of the hypothesis's positive types
/// (`folearn_types::canon`) — not the server's arena-relative ids. The
/// solver is deterministic, so identical instances yield identical
/// triples no matter which server answered; the reduction only consumes
/// that partition (the Ramsey grouping), which is why
/// `model_check_via_erm` against a loopback daemon — or a cluster
/// router whose replicas fail over mid-run — is bit-identical to the
/// in-process run.
pub struct RemoteOracle {
    client: Arc<Mutex<RetryingClient>>,
    /// Local graph memo: canonical-text hash → server structure id
    /// (avoids re-sending the graph text on every pair query).
    structures: HashMap<u64, u64>,
    key_table: HashMap<(Vec<u64>, Vec<u32>, usize), u64>,
    calls: usize,
    realizable: usize,
}

impl RemoteOracle {
    /// Connect to a daemon at `addr` (e.g. the address of an in-process
    /// [`folearn_server::start`] handle) with no deadlines and no
    /// retries — the right default on a trusted loopback path.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientConfig::default(), RetryPolicy::none())
    }

    /// Connect with explicit socket deadlines and a retry policy — what
    /// the fault experiments (E19) use to survive an unreliable path.
    pub fn connect_with(
        addr: impl std::net::ToSocketAddrs,
        config: ClientConfig,
        policy: RetryPolicy,
    ) -> Result<Self, ClientError> {
        Ok(Self {
            client: Arc::new(Mutex::new(RetryingClient::connect(addr, config, policy)?)),
            structures: HashMap::new(),
            key_table: HashMap::new(),
            calls: 0,
            realizable: 0,
        })
    }

    /// Retry/reconnect counters accumulated by the shared connection.
    pub fn transport_stats(&self) -> TransportStats {
        self.client.lock().transport_stats().clone()
    }
}

impl ErmOracle for RemoteOracle {
    fn solve(&mut self, inst: &ErmInstance<'_>) -> OracleAnswer {
        self.calls += 1;
        let text = io::to_text(inst.graph);
        let local_hash = folearn_server::proto::fnv1a64(text.as_bytes());
        let mut client = self.client.lock();
        let structure = match self.structures.get(&local_hash) {
            Some(&s) => s,
            None => {
                let s = client.register(&text).expect("remote register failed");
                self.structures.insert(local_hash, s);
                s
            }
        };
        let examples: Vec<WireExample> = inst
            .examples
            .iter()
            .map(|e| WireExample {
                tuple: e.tuple.iter().map(|v| v.0).collect(),
                label: e.label,
            })
            .collect();
        let outcome = client
            .solve(
                structure,
                examples,
                inst.ell,
                inst.q,
                inst.epsilon,
                SolverSpec::default_brute(),
            )
            .expect("remote solve failed");
        drop(client);
        let realizable = outcome.error == 0.0;
        if realizable {
            self.realizable += 1;
        }
        let h = outcome.hypothesis;
        // Group by the backend-independent identity: canonical type-set
        // hashes, parameters, rank. Arena-relative `types` would differ
        // between cluster replicas and tear equal answers apart.
        let next = self.key_table.len() as u64;
        let key = *self
            .key_table
            .entry((h.type_keys.clone(), h.params.clone(), h.q))
            .or_insert(next);
        OracleAnswer {
            predictor: Predictor::Remote {
                client: Arc::clone(&self.client),
                structure,
                hypothesis: h.id,
                params: h.params.iter().map(|&p| V(p)).collect(),
            },
            key,
            realizable,
        }
    }

    fn calls(&self) -> usize {
        self.calls
    }

    fn realizable_calls(&self) -> usize {
        self.realizable
    }
}

/// Remark 10 demonstrator: delegates to an inner oracle but *corrupts*
/// the answer whenever the instance is not realisable (returning the
/// constantly-false hypothesis with a garbage key). The reduction must
/// still answer model-checking queries correctly.
pub struct AdversarialOnUnrealizable<O> {
    inner: O,
    corrupted: usize,
}

impl<O: ErmOracle> AdversarialOnUnrealizable<O> {
    /// Wrap an oracle.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            corrupted: 0,
        }
    }

    /// How many answers were corrupted.
    pub fn corrupted(&self) -> usize {
        self.corrupted
    }
}

impl<O: ErmOracle> ErmOracle for AdversarialOnUnrealizable<O> {
    fn solve(&mut self, inst: &ErmInstance<'_>) -> OracleAnswer {
        let answer = self.inner.solve(inst);
        if answer.realizable {
            return answer;
        }
        self.corrupted += 1;
        // Arbitrary wrong answer: constantly false, with a key that still
        // deterministically identifies "the corrupted answer" so the
        // Ramsey grouping sees a consistent (if useless) colouring.
        let arena = folearn::shared_arena(inst.graph);
        OracleAnswer {
            predictor: Predictor::Local(Hypothesis::always_false(
                inst.q,
                TypeMode::Global,
                arena,
            )),
            key: u64::MAX - 1,
            realizable: false,
        }
    }

    fn calls(&self) -> usize {
        self.inner.calls()
    }

    fn realizable_calls(&self) -> usize {
        self.inner.realizable_calls()
    }
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};

    use super::*;

    #[test]
    fn oracle_distinguishes_different_types() {
        // Claim 8: for tp_{q}(u) ≠ tp_{q}(v), the answer on ((u,0),(v,1))
        // with ε = 1/4 classifies u negative and v positive.
        let vocab = Vocabulary::new(["Red"]);
        let g = generators::periodically_colored(
            &generators::path(8, vocab),
            ColorId(0),
            4,
        );
        let mut oracle = BruteForceOracle::new();
        let examples =
            TrainingSequence::from_pairs([(vec![V(0)], false), (vec![V(1)], true)]);
        let inst = ErmInstance::new(&g, examples, 1, 0, 0, 0.25);
        let ans = oracle.solve(&inst);
        assert!(ans.realizable);
        assert!(!ans.predict(&g, &[V(0)]));
        assert!(ans.predict(&g, &[V(1)]));
        assert_eq!(oracle.calls(), 1);
        assert_eq!(oracle.realizable_calls(), 1);
    }

    #[test]
    fn equal_instances_get_equal_keys() {
        let g = generators::path(6, Vocabulary::empty());
        let mut oracle = BruteForceOracle::new();
        let mk = || TrainingSequence::from_pairs([(vec![V(0)], false), (vec![V(2)], true)]);
        let a1 = oracle.solve(&ErmInstance::new(&g, mk(), 1, 0, 2, 0.25));
        let a2 = oracle.solve(&ErmInstance::new(&g, mk(), 1, 0, 2, 0.25));
        assert_eq!(a1.key, a2.key);
    }

    #[test]
    fn unrealizable_instances_are_flagged() {
        // Same-type endpoints with contradictory labels: ε* = 1/2.
        let g = generators::path(6, Vocabulary::empty());
        let mut oracle = BruteForceOracle::new();
        let examples =
            TrainingSequence::from_pairs([(vec![V(0)], false), (vec![V(5)], true)]);
        let ans = oracle.solve(&ErmInstance::new(&g, examples, 1, 0, 2, 0.25));
        assert!(!ans.realizable);
        assert_eq!(oracle.realizable_calls(), 0);
    }

    #[test]
    fn adversarial_wrapper_corrupts_only_unrealizable() {
        let g = generators::path(6, Vocabulary::empty());
        let mut oracle = AdversarialOnUnrealizable::new(BruteForceOracle::new());
        let bad = TrainingSequence::from_pairs([(vec![V(0)], false), (vec![V(5)], true)]);
        let ans = oracle.solve(&ErmInstance::new(&g, bad, 1, 0, 2, 0.25));
        assert_eq!(ans.key, u64::MAX - 1);
        assert_eq!(oracle.corrupted(), 1);
        let good = TrainingSequence::from_pairs([(vec![V(0)], false), (vec![V(2)], true)]);
        let ans2 = oracle.solve(&ErmInstance::new(&g, good, 1, 0, 2, 0.25));
        assert!(ans2.realizable);
        assert_eq!(oracle.corrupted(), 1);
    }
}
