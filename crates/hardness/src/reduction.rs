//! `FO-MC ≤fpt-T (L,Q)-FO-ERM` — the Lemma 7 algorithm.
//!
//! To decide `G ⊨ ∃x ψ(x)` with an ERM oracle:
//!
//! 1. For every pair `u < v`, query the oracle on `Λ = ((u,0),(v,1))`
//!    with `k=1, ℓ*=0, q* = q−1, ε = 1/4`. By Claim 8, whenever
//!    `tp_{q−1}(u) ≠ tp_{q−1}(v)` the answer `γ_{u,v}` rejects `u` and
//!    accepts `v`; when the types agree we know nothing — and cannot tell
//!    which case we are in.
//! 2. Shrink `V(G)` to a set `T` of type representatives: while three
//!    vertices `v₁ < v₂ < v₃` are *monochromatic* (all three pairwise
//!    answers equal), drop `v₂` — by Claim 9 two of them share a type, and
//!    dropping the middle one always preserves property (i) ("every type
//!    keeps a representative"). Ramsey's theorem bounds the exhausted set
//!    by `R(2, s, 3)` where `s` counts possible oracle answers, i.e.
//!    independently of `n`.
//! 3. For each `t ∈ T`, recurse on `ψ_t` over `G_t`: the colour expansion
//!    marking `{t}` with `P_t` and `N(t)` with `Q_t`, with the free
//!    variable eliminated by atom substitution
//!    (`folearn_logic::transform::specialize_var`).
//!
//! Boolean structure is decomposed first; `∀x ψ` is handled as
//! `¬∃x ¬ψ`. Everything is instrumented for experiment E1.

use folearn::{ErmInstance, TrainingSequence};
use folearn_graph::{ops, Graph, V};
use folearn_logic::transform::{simplify, specialize_var};
use folearn_logic::{eval, Formula};
use folearn_obs::{Counter, Json};

use crate::oracle::ErmOracle;

/// Instrumentation of one reduction run.
#[derive(Debug, Clone, Default)]
pub struct ReductionReport {
    /// The model-checking answer.
    pub result: bool,
    /// Total oracle calls.
    pub oracle_calls: usize,
    /// Oracle calls whose instance was realisable (Remark 10).
    pub realizable_calls: usize,
    /// `|T|` at every ∃-recursion node, in visit order.
    pub representative_set_sizes: Vec<usize>,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
}

impl ReductionReport {
    /// The shared machine-readable rendering used by the `exp_*` binaries.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("result", Json::Bool(self.result)),
            ("oracle_calls", Json::int(self.oracle_calls)),
            ("realizable_calls", Json::int(self.realizable_calls)),
            (
                "representative_set_sizes",
                Json::Arr(
                    self.representative_set_sizes
                        .iter()
                        .map(|&s| Json::int(s))
                        .collect(),
                ),
            ),
            ("max_depth", Json::int(self.max_depth)),
        ])
    }
}

/// Decide `G ⊨ φ` (a sentence) using only the ERM oracle for the
/// quantifier steps. Returns the answer plus instrumentation.
///
/// # Panics
/// Panics if `φ` has free variables.
pub fn model_check_via_erm(
    g: &Graph,
    phi: &Formula,
    oracle: &mut dyn ErmOracle,
) -> ReductionReport {
    assert!(phi.is_sentence(), "model checking needs a sentence");
    let sp = folearn_obs::span("reduction.modelcheck");
    folearn_obs::meta("q", Json::int(phi.quantifier_rank()));
    let mut report = ReductionReport::default();
    let calls_before = oracle.calls();
    let realizable_before = oracle.realizable_calls();
    report.result = check(g, &simplify(phi), oracle, 0, &mut report);
    report.oracle_calls = oracle.calls() - calls_before;
    report.realizable_calls = oracle.realizable_calls() - realizable_before;
    folearn_obs::count(Counter::RealizableCalls, report.realizable_calls as u64);
    folearn_obs::meta("max_depth", Json::int(report.max_depth));
    drop(sp);
    report
}

fn check(
    g: &Graph,
    phi: &Formula,
    oracle: &mut dyn ErmOracle,
    depth: usize,
    report: &mut ReductionReport,
) -> bool {
    report.max_depth = report.max_depth.max(depth);
    match phi {
        Formula::Bool(b) => *b,
        Formula::Not(f) => !check(g, f, oracle, depth, report),
        Formula::And(fs) => fs.iter().all(|f| check(g, f, oracle, depth, report)),
        Formula::Or(fs) => fs.iter().any(|f| check(g, f, oracle, depth, report)),
        Formula::Forall(v, f) => {
            let flipped = Formula::exists(*v, f.clone().not());
            !check(g, &flipped, oracle, depth, report)
        }
        Formula::Exists(x, psi) => {
            if g.num_vertices() == 0 {
                return false;
            }
            let q = phi.quantifier_rank();
            let t_set = representatives(g, q - 1, oracle, report);
            report.representative_set_sizes.push(t_set.len());
            for t in t_set {
                let (g_t, psi_t) = relativize(g, psi, *x, t);
                if check(&g_t, &simplify(&psi_t), oracle, depth + 1, report) {
                    return true;
                }
            }
            false
        }
        // Quantifier-free sentences have no atoms over variables at all
        // (no free variables exist), but equality/edge atoms cannot occur
        // in a sentence without quantifiers — evaluate directly for
        // robustness.
        atom => eval::models(g, atom),
    }
}

/// Compute the representative set `T` via pairwise oracle answers and
/// monochromatic-triple elimination (Claims 8 & 9).
///
/// Exposed for experiment E1, which tracks `|T|` against `n`.
pub fn representatives(
    g: &Graph,
    q_star: usize,
    oracle: &mut dyn ErmOracle,
    _report: &mut ReductionReport,
) -> Vec<V> {
    let n = g.num_vertices();
    if n <= 2 {
        return g.vertices().collect();
    }
    // Every `oracle.solve` of the reduction happens in this pairwise loop,
    // so one span here accounts for the full Lemma 7 oracle-call budget
    // (quadratic per ∃-level — the claim measured by experiment E1).
    let sp = folearn_obs::span("reduction.representatives");
    folearn_obs::meta("n", Json::int(n));
    // γ keys for each unordered pair (indexed by (min, max)).
    let mut gamma: std::collections::HashMap<(u32, u32), u64> =
        std::collections::HashMap::new();
    for u in g.vertices() {
        for v in g.vertices() {
            if u < v {
                let examples = TrainingSequence::from_pairs([
                    (vec![u], false),
                    (vec![v], true),
                ]);
                let inst = ErmInstance::new(g, examples, 1, 0, q_star, 0.25);
                let ans = oracle.solve(&inst);
                folearn_obs::count(Counter::OracleCalls, 1);
                gamma.insert((u.0, v.0), ans.key);
            }
        }
    }
    drop(sp);
    let mut t: Vec<V> = g.vertices().collect();
    // While a monochromatic triple exists, drop its middle vertex. The
    // loop exhausts within |V| iterations; the exhausted set is no larger
    // than the Ramsey bound R(2, s, 3).
    'outer: loop {
        for i in 0..t.len() {
            for j in (i + 1)..t.len() {
                let gij = gamma[&(t[i].0, t[j].0)];
                for l in (j + 1)..t.len() {
                    if gamma[&(t[i].0, t[l].0)] == gij && gamma[&(t[j].0, t[l].0)] == gij {
                        t.remove(j);
                        continue 'outer;
                    }
                }
            }
        }
        break;
    }
    t
}

/// Build `(G_t, ψ_t)`: expand `G` with fresh colours `P_t = {t}` and
/// `Q_t = N(t)` and substitute the free variable `x` away.
pub fn relativize(g: &Graph, psi: &Formula, x: folearn_logic::Var, t: V) -> (Graph, Formula) {
    let level = g.vocab().num_colors();
    let p_name = format!("__P{level}");
    let q_name = format!("__Q{level}");
    let neighbors: Vec<V> = g.neighbors(t).iter().map(|&w| V(w)).collect();
    let g_t = ops::expand_colors(g, &[(&p_name, vec![t]), (&q_name, neighbors)]);
    let p_t = g_t.vocab().color_by_name(&p_name).expect("just added");
    let q_t = g_t.vocab().color_by_name(&q_name).expect("just added");
    let psi_t = specialize_var(psi, x, p_t, q_t, &|c| g.has_color(t, c));
    (g_t, psi_t)
}

#[cfg(test)]
mod tests {
    use folearn_graph::{generators, ColorId, Vocabulary};
    use folearn_logic::parse;

    use crate::oracle::{AdversarialOnUnrealizable, BruteForceOracle};

    use super::*;

    fn colored_path(n: usize, stride: usize) -> Graph {
        let g = generators::path(n, Vocabulary::new(["Red"]));
        generators::periodically_colored(&g, ColorId(0), stride)
    }

    fn check_agreement(g: &Graph, sentences: &[&str]) {
        let vocab = g.vocab().as_ref().clone();
        for s in sentences {
            let phi = parse(s, &vocab).unwrap();
            let direct = eval::models(g, &phi);
            let mut oracle = BruteForceOracle::new();
            let report = model_check_via_erm(g, &phi, &mut oracle);
            assert_eq!(report.result, direct, "disagreement on {s}");
            assert!(report.oracle_calls > 0 || phi.quantifier_rank() == 0);
        }
    }

    #[test]
    fn agrees_with_direct_mc_on_colored_paths() {
        let g = colored_path(7, 3);
        check_agreement(
            &g,
            &[
                "exists x0. Red(x0)",
                "forall x0. Red(x0)",
                "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
                "exists x0. exists x1. E(x0, x1) & Red(x0) & Red(x1)",
                "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
            ],
        );
    }

    #[test]
    fn agrees_on_trees_and_cycles() {
        let t = generators::random_tree(9, Vocabulary::new(["Red"]), 2);
        let t = generators::periodically_colored(&t, ColorId(0), 2);
        check_agreement(
            &t,
            &[
                "exists x0. !Red(x0) & forall x1. E(x0, x1) -> Red(x1)",
                "exists x0. exists x1. exists x2. E(x0, x1) & E(x1, x2) & x0 != x2",
            ],
        );
        let c = generators::cycle(6, Vocabulary::new(["Red"]));
        let c = generators::periodically_colored(&c, ColorId(0), 2);
        check_agreement(&c, &["forall x0. exists x1. E(x0, x1) & Red(x1)"]);
    }

    #[test]
    fn boolean_structure_is_decomposed() {
        let g = colored_path(6, 2);
        check_agreement(
            &g,
            &[
                "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
                "(forall x0. Red(x0)) | (exists x0. !Red(x0))",
                "true",
                "false",
            ],
        );
    }

    #[test]
    fn representative_set_is_small_and_covering() {
        // On a long coloured path the (q−1)-types are few; T must stay
        // small and contain a representative of each unary type.
        let g = colored_path(14, 3);
        let mut oracle = BruteForceOracle::new();
        let mut report = ReductionReport::default();
        let t = representatives(&g, 1, &mut oracle, &mut report);
        assert!(t.len() < g.num_vertices(), "T did not shrink: {t:?}");
        // Coverage: every vertex shares a 1-type with some representative.
        let mut arena = folearn_types::TypeArena::new(std::sync::Arc::clone(g.vocab()));
        let reps: std::collections::HashSet<_> = t
            .iter()
            .map(|&v| folearn_types::compute::type_of(&g, &mut arena, &[v], 1))
            .collect();
        for v in g.vertices() {
            let tv = folearn_types::compute::type_of(&g, &mut arena, &[v], 1);
            assert!(reps.contains(&tv), "type of {v} lost from T");
        }
    }

    #[test]
    fn representative_count_stabilises_with_n() {
        let sizes: Vec<usize> = [8usize, 12, 16]
            .into_iter()
            .map(|n| {
                let g = colored_path(n, 3);
                let mut oracle = BruteForceOracle::new();
                let mut report = ReductionReport::default();
                representatives(&g, 1, &mut oracle, &mut report).len()
            })
            .collect();
        // Bounded independently of n (allowing slack for boundary types).
        assert!(sizes.iter().all(|&s| s <= sizes[0] + 2), "{sizes:?}");
    }

    #[test]
    fn remark_10_adversarial_oracle_still_correct() {
        // Corrupt every non-realisable oracle answer: the reduction must
        // still model-check correctly (it only relies on realisable ones).
        let g = colored_path(6, 2);
        let vocab = g.vocab().as_ref().clone();
        for s in [
            "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
            "forall x0. Red(x0) -> exists x1. E(x0, x1)",
        ] {
            let phi = parse(s, &vocab).unwrap();
            let mut oracle = AdversarialOnUnrealizable::new(BruteForceOracle::new());
            let report = model_check_via_erm(&g, &phi, &mut oracle);
            assert_eq!(report.result, eval::models(&g, &phi), "{s}");
            assert!(oracle.corrupted() > 0, "adversary never triggered on {s}");
        }
    }

    #[test]
    fn relativization_preserves_semantics() {
        let g = colored_path(6, 2);
        let vocab = g.vocab().as_ref().clone();
        let psi = parse("exists x1. E(x0, x1) & Red(x1)", &vocab).unwrap();
        for t in g.vertices() {
            let (g_t, psi_t) = relativize(&g, &psi, 0, t);
            assert!(psi_t.is_sentence());
            assert_eq!(
                eval::models(&g_t, &psi_t),
                eval::satisfies(&g, &psi, &[t]),
                "t = {t}"
            );
        }
    }

    #[test]
    fn oracle_call_count_is_quadratic_per_level() {
        let g = colored_path(8, 3);
        let vocab = g.vocab().as_ref().clone();
        let phi = parse("exists x0. Red(x0)", &vocab).unwrap();
        let mut oracle = BruteForceOracle::new();
        let report = model_check_via_erm(&g, &phi, &mut oracle);
        let n = g.num_vertices();
        assert_eq!(report.oracle_calls, n * (n - 1) / 2);
        assert_eq!(report.representative_set_sizes.len(), 1);
    }
}
