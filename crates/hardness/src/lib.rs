//! The AW[\*]-hardness reduction of Theorem 1.
//!
//! Lemma 7 of the paper: first-order model checking `FO-MC` is
//! fpt-Turing-reducible to `(L,Q)-FO-ERM`. Since `FO-MC` is AW[\*]-complete,
//! learning first-order queries is AW[\*]-hard. The proof is an explicit
//! algorithm, and this crate runs it:
//!
//! * [`oracle`] — the ERM-oracle interface the reduction consumes,
//!   instantiated with the workspace's brute-force learner, plus an
//!   adversarial wrapper that corrupts every *non-realisable* answer to
//!   demonstrate Remark 10 (the reduction only relies on answers for
//!   instances with `ε* = 0`);
//! * [`reduction`] — the model-checking algorithm: pairwise
//!   distinguishing hypotheses `γ_{u,v}` from oracle calls, the
//!   Ramsey-style elimination building a bounded set `T` of `(q−1)`-type
//!   representatives (Claims 8 and 9), and the `P_t`/`Q_t` relativised
//!   recursion;
//! * [`copies`] — the generalised Claim 8 for oracles that insist on
//!   returning parameters (`L(1,0,q) > 0`): the `2ℓ` disjoint-copies
//!   construction that extracts a parameter-free distinguisher anyway.

pub mod copies;
pub mod oracle;
pub mod reduction;

pub use oracle::{BruteForceOracle, ErmOracle, OracleAnswer};
pub use reduction::{model_check_via_erm, ReductionReport};
