//! Acceptance test: the Lemma 7 reduction driven by a `RemoteOracle`
//! against a live loopback folearn daemon produces *bit-identical*
//! model-checking behaviour to the in-process `BruteForceOracle` —
//! same verdicts, same oracle-call counts, same realisability split,
//! same representative-set trace — and the daemon's result cache
//! absorbs the reduction's repeated instances.

use folearn_graph::{generators, ColorId, Graph, Vocabulary};
use folearn_hardness::oracle::{BruteForceOracle, ErmOracle, RemoteOracle};
use folearn_hardness::reduction::model_check_via_erm;
use folearn_logic::{eval, parse};
use folearn_server::{start, ChaosConfig, ChaosProxy, Client, ClientApi, ClientConfig, Direction, FaultKind, RetryPolicy, ServerConfig};

fn colored_path(n: usize, stride: usize) -> Graph {
    let g = generators::path(n, Vocabulary::new(["Red"]));
    generators::periodically_colored(&g, ColorId(0), stride)
}

#[test]
fn remote_reduction_is_bit_identical_to_in_process() {
    let handle = start(&ServerConfig::default()).expect("server starts");
    let addr = handle.addr();

    let g = colored_path(7, 3);
    let vocab = g.vocab().as_ref().clone();
    let sentences = [
        "exists x0. Red(x0)",
        "forall x0. Red(x0)",
        "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
        "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
        "(exists x0. Red(x0)) & !(forall x0. Red(x0))",
    ];

    let mut remote = RemoteOracle::connect(addr).expect("oracle connects");
    for s in sentences {
        let phi = parse(s, &vocab).unwrap();
        let direct = eval::models(&g, &phi);

        let mut local = BruteForceOracle::new();
        let local_report = model_check_via_erm(&g, &phi, &mut local);
        let remote_report = model_check_via_erm(&g, &phi, &mut remote);

        assert_eq!(remote_report.result, direct, "remote verdict wrong on {s}");
        assert_eq!(
            remote_report.result, local_report.result,
            "verdict mismatch on {s}"
        );
        assert_eq!(
            remote_report.oracle_calls, local_report.oracle_calls,
            "call-count mismatch on {s}"
        );
        assert_eq!(
            remote_report.realizable_calls, local_report.realizable_calls,
            "realisability split mismatch on {s}"
        );
        assert_eq!(
            remote_report.representative_set_sizes, local_report.representative_set_sizes,
            "Ramsey grouping diverged on {s} — key partitions are not identical"
        );
        assert_eq!(remote_report.max_depth, local_report.max_depth);
    }

    // The reduction re-queries identical pair instances across sentences
    // over the same structure: the daemon's result cache must have
    // absorbed some of them.
    let mut probe = Client::connect(addr).expect("probe connects");
    let stats = probe.stats().expect("stats");
    let cache = stats.get("cache").expect("cache block");
    let hits = cache.get("hits").unwrap().as_usize().unwrap();
    let hit_rate = cache.get("hit_rate").unwrap().as_num().unwrap();
    assert!(hits > 0, "no cache hits across repeated oracle calls");
    assert!(hit_rate > 0.0);

    handle.shutdown();
}

#[test]
fn remote_answers_predict_like_local_ones() {
    use folearn::{ErmInstance, TrainingSequence};
    use folearn_graph::V;

    let handle = start(&ServerConfig::default()).expect("server starts");
    let g = colored_path(8, 4);

    let mut local = BruteForceOracle::new();
    let mut remote = RemoteOracle::connect(handle.addr()).expect("oracle connects");

    let mk = || TrainingSequence::from_pairs([(vec![V(0)], false), (vec![V(1)], true)]);
    let local_ans = local.solve(&ErmInstance::new(&g, mk(), 1, 0, 0, 0.25));
    let remote_ans = remote.solve(&ErmInstance::new(&g, mk(), 1, 0, 0, 0.25));

    assert_eq!(local_ans.realizable, remote_ans.realizable);
    assert_eq!(local_ans.params(), remote_ans.params());
    for v in g.vertices() {
        assert_eq!(
            local_ans.predict(&g, &[v]),
            remote_ans.predict(&g, &[v]),
            "prediction mismatch at {v}"
        );
    }

    // Key structure: equal instances share a key; the instance with the
    // opposite labelling gets a different predictor key partition than
    // an identical repeat.
    let repeat = remote.solve(&ErmInstance::new(&g, mk(), 1, 0, 0, 0.25));
    assert_eq!(remote_ans.key, repeat.key, "identical instances, same key");
    assert_eq!(remote.calls(), 2);
    assert_eq!(remote.realizable_calls(), 2);

    handle.shutdown();
}

/// The acceptance criterion of the fault-tolerance layer: under every
/// fault mode the reduction completes via retries and its verdict,
/// call counts, and representative-set trace are *bit-identical* to the
/// in-process run. Retry-safety rests on idempotence: a re-sent solve
/// is answered by the deterministic engine (or its cache) with the same
/// outcome, so the key partition the Ramsey grouping consumes cannot
/// diverge, no matter which frames the path mangled.
#[test]
fn reduction_survives_an_unreliable_path_bit_identically() {
    use std::time::Duration;

    let g = colored_path(7, 3);
    let vocab = g.vocab().as_ref().clone();
    let sentence = "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)";
    let phi = parse(sentence, &vocab).unwrap();
    let direct = eval::models(&g, &phi);

    let mut local = BruteForceOracle::new();
    let local_report = model_check_via_erm(&g, &phi, &mut local);

    // Drop needs a low rate (every fault costs a read deadline);
    // truncate and garble fail fast, so they can fault more often.
    for (kind, rate) in [
        (FaultKind::Drop, 0.04),
        (FaultKind::Truncate, 0.08),
        (FaultKind::Garble, 0.15),
    ] {
        let handle = start(&ServerConfig::default()).expect("server starts");
        let proxy = ChaosProxy::start(
            handle.addr(),
            ChaosConfig {
                kind,
                rate,
                delay: Duration::from_millis(150),
                direction: Direction::Both,
                seed: 99,
            },
        )
        .expect("proxy starts");
        let mut remote = RemoteOracle::connect_with(
            proxy.addr(),
            ClientConfig::with_deadline(Duration::from_millis(250)),
            RetryPolicy {
                max_retries: 10,
                base_delay: Duration::from_millis(2),
                max_delay: Duration::from_millis(40),
                seed: 1,
            },
        )
        .expect("oracle connects through the proxy");

        let remote_report = model_check_via_erm(&g, &phi, &mut remote);
        let mode = kind.name();
        assert_eq!(remote_report.result, direct, "[{mode}] verdict wrong");
        assert_eq!(
            remote_report.oracle_calls, local_report.oracle_calls,
            "[{mode}] call-count mismatch"
        );
        assert_eq!(
            remote_report.realizable_calls, local_report.realizable_calls,
            "[{mode}] realisability split mismatch"
        );
        assert_eq!(
            remote_report.representative_set_sizes, local_report.representative_set_sizes,
            "[{mode}] Ramsey grouping diverged"
        );
        assert_eq!(remote_report.max_depth, local_report.max_depth);

        assert!(proxy.faults_injected() > 0, "[{mode}] the proxy never faulted");
        let ts = remote.transport_stats();
        assert!(ts.retries > 0, "[{mode}] survived faults without retrying?");

        proxy.shutdown();
        handle.shutdown();
    }
}
