//! Quickstart: learn a first-order query from labelled examples.
//!
//! We plant the target query "x is adjacent to a red vertex" on a
//! coloured random tree, label every vertex, run the exact ERM learner,
//! and print the recovered FO formula.
//!
//! Run with: `cargo run --release --example quickstart`

use folearn_suite::core::bruteforce::brute_force_erm;
use folearn_suite::core::fit::TypeMode;
use folearn_suite::core::problem::{ErmInstance, TrainingSequence};
use folearn_suite::core::shared_arena;
use folearn_suite::graph::{generators, ColorId, Vocabulary, V};
use folearn_suite::logic::parser::render;

fn main() {
    // 1. A background structure: a coloured random tree.
    let vocab = Vocabulary::new(["Red"]);
    let tree = generators::random_tree(40, vocab, 42);
    let g = generators::periodically_colored(&tree, ColorId(0), 5);
    println!(
        "background graph: {} vertices, {} edges, {} red",
        g.num_vertices(),
        g.num_edges(),
        g.vertices_with_color(ColorId(0)).len()
    );

    // 2. The hidden target: "adjacent to a red vertex".
    let target = |t: &[V]| {
        g.neighbors(t[0])
            .iter()
            .any(|&w| g.has_color(V(w), ColorId(0)))
    };

    // 3. Label all vertices (a realisable training sequence).
    let examples = TrainingSequence::label_all_tuples(&g, 1, target);
    println!("training examples: {}", examples.len());

    // 4. Learn with hypothesis class H_{k=1, ℓ=0, q=1}(G).
    let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
    let arena = shared_arena(&g);
    let result = brute_force_erm(&inst, TypeMode::Global, &arena);
    println!("training error: {:.3}", result.error);
    println!("hypothesis: {}", result.hypothesis.describe());

    // 5. Materialise the hypothesis as a genuine FO formula.
    let phi = result.hypothesis.to_formula();
    println!("learned formula (quantifier rank {}):", phi.quantifier_rank());
    println!("  {}", render(&phi, g.vocab()));

    // 6. Predict on every vertex and verify against the target.
    let wrong = g
        .vertices()
        .filter(|&v| result.hypothesis.predict(&g, &[v]) != target(&[v]))
        .count();
    println!("mistakes on the full domain: {wrong}");
    assert_eq!(wrong, 0, "the learner should recover the target exactly");
}
