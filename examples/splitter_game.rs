//! The splitter game: watching nowhere-denseness.
//!
//! Fact 4 (Grohe–Kreutzer–Siebertz): a class is nowhere dense iff
//! Splitter wins the `(r, s)` game with `s` independent of the graph's
//! order. We play the game on forests, bounded-degree graphs, grids and
//! cliques with adversarial Connectors, and print the round counts — the
//! boundary between FPT-learnable (Theorem 2) and hard is visible in the
//! numbers.
//!
//! Run with: `cargo run --release --example splitter_game`

use folearn_suite::graph::splitter::{
    play_game, ForestSplitter, GreedySplitter, MaxBallConnector, SplitterStrategy,
};
use folearn_suite::graph::{generators, Graph, Vocabulary};

fn play(name: &str, g: &Graph, splitter: &mut dyn SplitterStrategy, r: usize) {
    let mut connector = MaxBallConnector;
    let cap = g.num_vertices() + 5;
    let result = play_game(g, r, splitter, &mut connector, cap);
    let bound = splitter
        .round_bound(r)
        .map_or("—".to_string(), |b| b.to_string());
    println!(
        "{:<28} n={:<5} r={} rounds={:<4} bound={:<6} strategy={}",
        name,
        g.num_vertices(),
        r,
        result.rounds,
        bound,
        splitter.name()
    );
}

fn main() {
    let r = 2;
    println!("splitter game, radius r = {r}, Connector = max-ball\n");

    for n in [50usize, 200, 800] {
        let g = generators::random_tree(n, Vocabulary::empty(), 1);
        play("random tree", &g, &mut ForestSplitter, r);
    }
    println!();
    for n in [50usize, 200, 800] {
        let g = generators::bounded_degree_random(n, 3, 1.0, Vocabulary::empty(), 2);
        play("random max-degree-3", &g, &mut GreedySplitter, r);
    }
    println!();
    for side in [6usize, 12, 24] {
        let g = generators::grid(side, side, Vocabulary::empty());
        play("grid (planar)", &g, &mut GreedySplitter, r);
    }
    println!();
    for n in [10usize, 20, 40] {
        let g = generators::clique(n, Vocabulary::empty());
        play("clique (dense!)", &g, &mut GreedySplitter, r);
    }

    println!(
        "\nOn the nowhere dense classes the round count stays flat as n\n\
         grows; on cliques it scales with n — Splitter has no winning\n\
         strategy with bounded s, so Theorem 2 does not apply there."
    );
}
