//! Learning first-order queries *with counting* (FO+C).
//!
//! The paper's conclusion asks for extensions "to richer logics … such as
//! the extensions of first-order logic with counting". This example shows
//! the gap and the fix: the target "x has at least two red neighbours" is
//! a degree threshold — inexpressible with a single FO quantifier — so
//! classical rank-1 ERM has unavoidable error, while counting types with
//! cap 2 learn it exactly and materialise an honest `∃^{≥2}` formula.
//!
//! Run with: `cargo run --release --example counting_queries`

use folearn_suite::core::fit::{fit_with_params, TypeMode};
use folearn_suite::core::problem::TrainingSequence;
use folearn_suite::core::shared_arena;
use folearn_suite::graph::{generators, ColorId, Vocabulary, V};
use folearn_suite::logic::parser::render;

fn main() {
    let vocab = Vocabulary::new(["Red"]);
    let tree = generators::random_tree(30, vocab, 5);
    let g = generators::periodically_colored(&tree, ColorId(0), 2);

    // Target: "at least 2 red neighbours".
    let target = |t: &[V]| {
        g.neighbors(t[0])
            .iter()
            .filter(|&&w| g.has_color(V(w), ColorId(0)))
            .count()
            >= 2
    };
    let examples = TrainingSequence::label_all_tuples(&g, 1, target);
    let positives = examples.positives().count();
    println!(
        "n = {}, target 'has ≥2 red neighbours': {positives} positive",
        g.num_vertices()
    );

    let arena = shared_arena(&g);
    let (_, fo_err) = fit_with_params(&g, &examples, &[], 1, TypeMode::Global, &arena);
    println!("classical FO, q = 1:   training error {fo_err:.3}");

    let (h, foc_err) = fit_with_params(
        &g,
        &examples,
        &[],
        1,
        TypeMode::GlobalCounting { cap: 2 },
        &arena,
    );
    println!("FO+C (cap 2), q = 1:   training error {foc_err:.3}");
    assert!(fo_err > 0.0 && foc_err == 0.0);

    let phi = h.to_formula();
    println!(
        "\nlearned FO+C formula (quantifier rank {}):",
        phi.quantifier_rank()
    );
    let printed = render(&phi, g.vocab());
    if printed.len() > 400 {
        println!("  {} … ({} chars total)", &printed[..400], printed.len());
    } else {
        println!("  {printed}");
    }
    assert!(printed.contains("exists^2"), "counting quantifier expected");

    let wrong = g
        .vertices()
        .filter(|&v| h.predict(&g, &[v]) != target(&[v]))
        .count();
    println!("\nmistakes on the full domain: {wrong}");
    assert_eq!(wrong, 0);
}
