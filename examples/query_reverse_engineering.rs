//! Reverse-engineer a database query from labelled rows.
//!
//! A classic database scenario (the paper's motivating setting): a user
//! marks employees as interesting / not interesting; the system learns a
//! first-order query explaining the labels over the database. Here the
//! hidden intent is "works in a department that has a senior employee".
//!
//! The relational instance is encoded as a coloured incidence graph
//! (Section 2's "coding relational structures as graphs"), the learner
//! runs on the graph, and the learned hypothesis transfers back to rows.
//!
//! Run with: `cargo run --release --example query_reverse_engineering`

use folearn_suite::core::bruteforce::brute_force_erm;
use folearn_suite::core::fit::TypeMode;
use folearn_suite::core::problem::ErmInstance;
use folearn_suite::core::shared_arena;
use folearn_suite::relational::demo::employees;
use folearn_suite::relational::encode_instance;
use folearn_suite::relational::schema::RelFormula;

fn main() {
    // 1. The database.
    let (inst, rels) = employees();
    println!(
        "database: {} elements, {} facts",
        inst.domain_size(),
        inst.num_facts()
    );

    // 2. The user's hidden intent, as a relational FO query:
    //    ∃d (WorksIn(x, d) ∧ ∃s (WorksIn(s, d) ∧ Senior(s))).
    let intent = RelFormula::Exists(
        1,
        Box::new(RelFormula::And(vec![
            RelFormula::Atom(rels.works_in, vec![0, 1]),
            RelFormula::Exists(
                2,
                Box::new(RelFormula::And(vec![
                    RelFormula::Atom(rels.works_in, vec![2, 1]),
                    RelFormula::Atom(rels.senior, vec![2]),
                ])),
            ),
        ])),
    );

    // 3. The user labels every element (rows in practice; here all).
    let labelled: Vec<_> = inst
        .elements()
        .map(|e| {
            let label = intent.satisfies(&inst, &[e]);
            (vec![e], label)
        })
        .collect();
    let positives = labelled.iter().filter(|(_, l)| *l).count();
    println!("labelled rows: {} ({} positive)", labelled.len(), positives);

    // 4. Encode and learn. The intent translates to quantifier rank
    //    2 (+2 for the incidence encoding of each atom), so q = 4 covers
    //    it; no parameters are needed.
    let enc = encode_instance(&inst);
    println!(
        "incidence graph: {} vertices, {} edges, max degree {}",
        enc.graph.num_vertices(),
        enc.graph.num_edges(),
        enc.graph.max_degree()
    );
    let examples = enc.to_training_sequence(labelled.clone());
    let inst_erm = ErmInstance::new(&enc.graph, examples, 1, 0, 4, 0.0);
    let arena = shared_arena(&enc.graph);
    let result = brute_force_erm(&inst_erm, TypeMode::Global, &arena);
    println!("training error: {:.3}", result.error);

    // 5. Check the learned query row by row.
    println!("\n{:<8} {:>6} {:>8}", "element", "label", "learned");
    let mut wrong = 0;
    for (tuple, label) in &labelled {
        let predicted = result
            .hypothesis
            .predict(&enc.graph, &[enc.element_vertex(tuple[0])]);
        if predicted != *label {
            wrong += 1;
        }
        println!(
            "{:<8} {:>6} {:>8}",
            inst.element_name(tuple[0]),
            label,
            predicted
        );
    }
    println!("\nmistakes: {wrong}");
    assert_eq!(wrong, 0, "the intent is expressible, so ERM must fit it");
}
