//! MSO on strings: beyond first-order learnability.
//!
//! The paper's related work ([21]) and conclusion both point at monadic
//! second-order logic on strings. This example shows the gap concretely:
//! the target "the number of b's before position x is even" is MSO- but
//! not FO-definable (modular counting). The local FO learner — running on
//! the word's coloured-path encoding — cannot reach zero error, while ERM
//! over regular position queries (≡ MSO unary queries) recovers the
//! target exactly, in the two-phase preprocess-then-O(1) model.
//!
//! Run with: `cargo run --release --example mso_strings`

use folearn_suite::core::fit::{fit_with_params, TypeMode};
use folearn_suite::core::problem::{Example, TrainingSequence};
use folearn_suite::core::shared_arena;
use folearn_suite::graph::V;
use folearn_suite::strings::learn::{PosExample, StringLearner};
use folearn_suite::strings::query::{even_before, standard_class};
use folearn_suite::strings::Word;

fn main() {
    let w = Word::random(120, 2, 21);
    let target = even_before(2, 1); // "#b's before x is even"
    let pre = target.preprocess(&w);
    println!("word (n = {}): {}…", w.len(), &w.to_string()[..40]);
    println!("target: {}", target.name);

    // Labels for every position.
    let labels: Vec<bool> = (0..w.len()).map(|i| pre.classify(i)).collect();

    // 1. FO on the coloured-path encoding, local types at several radii:
    //    parity is invisible to any bounded-radius/rank view.
    let g = w.to_colored_path();
    let examples: TrainingSequence = (0..w.len())
        .map(|i| Example::new(vec![V(i as u32)], labels[i]))
        .collect();
    let arena = shared_arena(&g);
    println!("\nFO learners on the coloured-path encoding:");
    for (q, r) in [(1usize, 1usize), (1, 3), (2, 2)] {
        let (_, err) = fit_with_params(
            &g,
            &examples,
            &[],
            q,
            TypeMode::Local { r },
            &arena,
        );
        println!("  local q={q}, r={r}:  training error {err:.3}");
        assert!(err > 0.0, "parity must defeat local FO types");
    }

    // 2. ERM over the regular (MSO) class, two-phase model.
    let class = standard_class(2);
    let learner = StringLearner::preprocess(&w, &class);
    let pos_examples: Vec<PosExample> = (0..w.len())
        .map(|pos| PosExample {
            pos,
            label: labels[pos],
        })
        .collect();
    let result = learner.erm(&pos_examples);
    println!("\nMSO (regular position queries), two-phase model:");
    println!("  winner: {}  training error {:.3}", result.best_name, result.error);
    assert_eq!(result.error, 0.0);
    println!(
        "\nThe modular-counting target defeats every bounded-radius FO view\n\
         but is exactly learnable as a regular position query — the reason\n\
         the paper's conclusion reaches for MSO and richer logics."
    );
}
