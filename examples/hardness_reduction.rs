//! Theorem 1 in action: model checking with a learning oracle.
//!
//! The hardness proof (Lemma 7) is an algorithm: it decides `G ⊨ φ`
//! using only `(L,Q)-FO-ERM` oracle calls. This example runs it on a
//! coloured tree, compares with direct model checking, and prints the
//! instrumentation — oracle calls, the sizes of the Ramsey-pruned
//! representative sets `T`, and how many oracle instances were even
//! realisable (Remark 10).
//!
//! Run with: `cargo run --release --example hardness_reduction`

use folearn_suite::graph::{generators, ColorId, Vocabulary};
use folearn_suite::hardness::{model_check_via_erm, BruteForceOracle};
use folearn_suite::logic::eval;
use folearn_suite::logic::parse;

fn main() {
    let vocab = Vocabulary::new(["Red"]);
    let tree = generators::random_tree(10, vocab, 3);
    let g = generators::periodically_colored(&tree, ColorId(0), 3);
    println!(
        "graph: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    let sentences = [
        "exists x0. Red(x0)",
        "forall x0. Red(x0)",
        "exists x0. Red(x0) & exists x1. E(x0, x1) & Red(x1)",
        "forall x0. Red(x0) -> exists x1. E(x0, x1) & !Red(x1)",
        "exists x0. exists x1. E(x0, x1) & !Red(x0) & !Red(x1)",
    ];

    println!(
        "{:<58} {:>6} {:>6} {:>7} {:>6}",
        "sentence", "direct", "oracle", "calls", "|T|max"
    );
    for s in sentences {
        let phi = parse(s, g.vocab()).expect("parse");
        let direct = eval::models(&g, &phi);
        let mut oracle = BruteForceOracle::new();
        let report = model_check_via_erm(&g, &phi, &mut oracle);
        assert_eq!(report.result, direct, "reduction disagreed on {s}");
        println!(
            "{:<58} {:>6} {:>6} {:>7} {:>6}",
            s,
            direct,
            report.result,
            report.oracle_calls,
            report
                .representative_set_sizes
                .iter()
                .max()
                .copied()
                .unwrap_or(0)
        );
    }
    println!(
        "\nEvery sentence was decided through the ERM oracle alone —\n\
         learning first-order queries is at least as hard as FO model\n\
         checking (AW[*]-hard, paper Theorem 1)."
    );
}
