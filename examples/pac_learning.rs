//! Agnostic PAC learning: generalisation from noisy samples.
//!
//! Section 3 of the paper: ERM on `m = O(log |H|)` i.i.d. samples is an
//! agnostic PAC learner. We sample from a noisy target distribution on a
//! coloured tree, run ERM on growing sample sizes, and watch the
//! generalisation error approach the Bayes risk (the label-noise rate).
//!
//! Run with: `cargo run --release --example pac_learning`

use folearn_suite::core::bruteforce::brute_force_erm;
use folearn_suite::core::fit::TypeMode;
use folearn_suite::core::pac::{sample_sequence, QueryDistribution};
use folearn_suite::core::problem::ErmInstance;
use folearn_suite::core::shared_arena;
use folearn_suite::graph::{generators, ColorId, Vocabulary, V};

fn main() {
    let vocab = Vocabulary::new(["Red"]);
    let tree = generators::random_tree(60, vocab, 7);
    let g = generators::periodically_colored(&tree, ColorId(0), 4);

    // Target: "x is red or adjacent to a red vertex"; labels flipped with
    // probability η = 0.1 (agnostic setting — the Bayes risk is 0.1).
    let noise = 0.10;
    let target = |t: &[V]| {
        g.has_color(t[0], ColorId(0))
            || g.neighbors(t[0])
                .iter()
                .any(|&w| g.has_color(V(w), ColorId(0)))
    };
    let dist = QueryDistribution::new(&g, 1, target, noise);

    println!("n = {}, noise = {noise}", g.num_vertices());
    println!(
        "{:>6} {:>12} {:>12} {:>12}",
        "m", "train err", "gen err", "bayes risk"
    );
    for (i, m) in [5usize, 10, 20, 40, 80, 160, 320].into_iter().enumerate() {
        let examples = sample_sequence(&dist, m, 1000 + i as u64);
        let inst = ErmInstance::new(&g, examples, 1, 0, 1, 0.0);
        let arena = shared_arena(&g);
        let result = brute_force_erm(&inst, TypeMode::Global, &arena);
        let gen_err = dist.exact_risk(|t| result.hypothesis.predict(&g, t));
        println!(
            "{:>6} {:>12.3} {:>12.3} {:>12.3}",
            m,
            result.error,
            gen_err,
            dist.bayes_risk()
        );
    }
    println!(
        "\nWith enough samples the generalisation error approaches the\n\
         Bayes risk: ERM is an agnostic PAC learner (paper, Section 3)."
    );
}
