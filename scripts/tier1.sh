#!/usr/bin/env bash
# Tier-1 gate: release build, the full test suite, and lint-clean clippy.
#
# The workspace vendors all third-party dependencies as path crates under
# crates/shims/ (no registry packages in Cargo.lock), so --offline always
# works and the gate is hermetic.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release --workspace
cargo test  --offline -q --workspace
# The obs crate must also pass with capture compiled out (the no-op
# mirror of the probe API keeps instrumented callers building).
cargo test  --offline -q -p folearn-obs --no-default-features
cargo clippy --offline --workspace --all-targets -- -D warnings

# --- folearn-server smoke test (hermetic: loopback only, ephemeral port) ---
# Boots the daemon through the real CLI, registers a structure, solves the
# same instance twice (the repeat must come out of the result cache with an
# identical hypothesis), and shuts the daemon down cleanly.
FOLEARN=target/release/folearn
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"; for P in ${SERVER_PID:-} ${ROUTER_PID:-} ${B1_PID:-} ${B2_PID:-} ${B3_PID:-} ${DUR_PID:-}; do kill "$P" 2>/dev/null || true; done' EXIT

printf 'colors Red\nvertices 6\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\ncolor 0 Red\ncolor 3 Red\n' > "$SMOKE/graph.txt"
printf '+ 0\n- 1\n- 2\n+ 3\n- 4\n' > "$SMOKE/sample.txt"

"$FOLEARN" serve --addr 127.0.0.1:0 --addr-file "$SMOKE/addr" --workers 1 > "$SMOKE/server.log" &
SERVER_PID=$!
for _ in $(seq 1 50); do [ -s "$SMOKE/addr" ] && break; sleep 0.1; done
[ -s "$SMOKE/addr" ] || { echo "tier1: server never published its address" >&2; exit 1; }
ADDR=$(cat "$SMOKE/addr")

"$FOLEARN" client --addr "$ADDR" --action ping | grep -q pong
"$FOLEARN" client --addr "$ADDR" --action solve --graph "$SMOKE/graph.txt" \
    --examples "$SMOKE/sample.txt" --ell 1 --q 1 > "$SMOKE/cold.txt"
grep -q 'cached:          no' "$SMOKE/cold.txt"
"$FOLEARN" client --addr "$ADDR" --action solve --graph "$SMOKE/graph.txt" \
    --examples "$SMOKE/sample.txt" --ell 1 --q 1 > "$SMOKE/warm.txt"
grep -q 'cached:          yes' "$SMOKE/warm.txt"
# Identical solve answers modulo the cached flag.
diff <(grep -v cached "$SMOKE/cold.txt") <(grep -v cached "$SMOKE/warm.txt")

# --- event-core pipelined smoke (hermetic: loopback only) -----------------
# The default (event-loop) core must absorb 200+ concurrent pipelined
# clients on this one daemon: every request answered (224 conns × 20
# requests + 224 registers = 4704), zero errors, no worker deaths.
"$FOLEARN" loadgen --addr "$ADDR" --graph "$SMOKE/graph.txt" \
    --connections 224 --requests 20 --pipeline 8 --pool 1 --seed 23 \
    --timeout-ms 60000 > "$SMOKE/loadgen.txt"
grep -q '^4704 requests over 224 connections' "$SMOKE/loadgen.txt"
grep -q ', 0 errors' "$SMOKE/loadgen.txt"
if grep -q 'failed' "$SMOKE/loadgen.txt"; then
    echo "tier1: pipelined loadgen smoke had worker failures" >&2
    cat "$SMOKE/loadgen.txt" >&2
    exit 1
fi

"$FOLEARN" client --addr "$ADDR" --action shutdown
wait "$SERVER_PID"
SERVER_PID=
grep -q 'shut down cleanly' "$SMOKE/server.log"

# --- durability crash smoke (hermetic: loopback + a scratch data dir) -----
# Boot a durable daemon, learn, SIGKILL it, and restart it on the same data
# dir: the pre-crash hypothesis id must answer evaluate with nobody
# re-registering or re-solving — a volatile restart would answer
# unknown_hypothesis here — and stats must show the WAL replay behind it.
"$FOLEARN" serve --addr 127.0.0.1:0 --addr-file "$SMOKE/dur.addr" --workers 1 \
    --data-dir "$SMOKE/durable" > "$SMOKE/dur.log" &
DUR_PID=$!
for _ in $(seq 1 50); do [ -s "$SMOKE/dur.addr" ] && break; sleep 0.1; done
[ -s "$SMOKE/dur.addr" ] || { echo "tier1: durable server never published its address" >&2; exit 1; }
DADDR=$(cat "$SMOKE/dur.addr")
"$FOLEARN" client --addr "$DADDR" --action solve --graph "$SMOKE/graph.txt" \
    --examples "$SMOKE/sample.txt" --ell 1 --q 1 > "$SMOKE/dur-solve.txt"
HYP=$(sed -n 's/^hypothesis id:   //p' "$SMOKE/dur-solve.txt")
[ -n "$HYP" ] || { echo "tier1: durable solve printed no hypothesis id" >&2; exit 1; }

kill -9 "$DUR_PID"; wait "$DUR_PID" 2>/dev/null || true
DUR_PID=
rm -f "$SMOKE/dur.addr"
"$FOLEARN" serve --addr 127.0.0.1:0 --addr-file "$SMOKE/dur.addr" --workers 1 \
    --data-dir "$SMOKE/durable" > "$SMOKE/dur2.log" &
DUR_PID=$!
for _ in $(seq 1 50); do [ -s "$SMOKE/dur.addr" ] && break; sleep 0.1; done
[ -s "$SMOKE/dur.addr" ] || { echo "tier1: durable server never came back" >&2; exit 1; }
DADDR=$(cat "$SMOKE/dur.addr")
"$FOLEARN" client --addr "$DADDR" --action evaluate --graph "$SMOKE/graph.txt" \
    --examples "$SMOKE/sample.txt" --hypothesis "$HYP" > "$SMOKE/dur-eval.txt"
grep -q 'error vs labels: 0.0000' "$SMOKE/dur-eval.txt"
"$FOLEARN" client --addr "$DADDR" --action stats > "$SMOKE/dur-stats.txt"
grep -q '"durable": true' "$SMOKE/dur-stats.txt"
grep -Eq '"wal_records_replayed": [1-9]' "$SMOKE/dur-stats.txt"
"$FOLEARN" client --addr "$DADDR" --action shutdown
wait "$DUR_PID"
DUR_PID=

# --- cluster smoke test (hermetic: loopback only, ephemeral ports) --------
# Boots three backend daemons and the consistent-hash router through the
# real CLI, learns through the router, kills one backend, and learns a
# fresh instance again: the surviving replicas must absorb the loss.
"$FOLEARN" serve --addr 127.0.0.1:0 --addr-file "$SMOKE/b1.addr" --workers 1 > "$SMOKE/b1.log" &
B1_PID=$!
"$FOLEARN" serve --addr 127.0.0.1:0 --addr-file "$SMOKE/b2.addr" --workers 1 > "$SMOKE/b2.log" &
B2_PID=$!
"$FOLEARN" serve --addr 127.0.0.1:0 --addr-file "$SMOKE/b3.addr" --workers 1 > "$SMOKE/b3.log" &
B3_PID=$!
for F in b1 b2 b3; do
    for _ in $(seq 1 50); do [ -s "$SMOKE/$F.addr" ] && break; sleep 0.1; done
    [ -s "$SMOKE/$F.addr" ] || { echo "tier1: backend $F never published its address" >&2; exit 1; }
done
BACKENDS="$(cat "$SMOKE/b1.addr"),$(cat "$SMOKE/b2.addr"),$(cat "$SMOKE/b3.addr")"

"$FOLEARN" route --backends "$BACKENDS" --replicas 2 --hedge-ms 25 \
    --addr 127.0.0.1:0 --addr-file "$SMOKE/router.addr" > "$SMOKE/router.log" &
ROUTER_PID=$!
for _ in $(seq 1 50); do [ -s "$SMOKE/router.addr" ] && break; sleep 0.1; done
[ -s "$SMOKE/router.addr" ] || { echo "tier1: router never published its address" >&2; exit 1; }
RADDR=$(cat "$SMOKE/router.addr")

"$FOLEARN" client --addr "$RADDR" --action ping | grep -q pong
"$FOLEARN" client --addr "$RADDR" --action solve --graph "$SMOKE/graph.txt" \
    --examples "$SMOKE/sample.txt" --ell 1 --q 1 --retries 4 > "$SMOKE/routed.txt"
grep -q 'training error:  0.0000' "$SMOKE/routed.txt"
"$FOLEARN" client --addr "$RADDR" --action stats | grep -q '"router"'

# --- cluster observability smoke ------------------------------------------
# An opted-in solve (--trace-out attaches a trace context) must come back
# with ONE stitched span tree: the router's spans wrapping the winning
# backend's server.solve subtree, renderable by `folearn trace`.
"$FOLEARN" client --addr "$RADDR" --action solve --graph "$SMOKE/graph.txt" \
    --examples "$SMOKE/sample.txt" --ell 1 --q 1 --retries 4 \
    --trace-out "$SMOKE/routed-trace.jsonl" > "$SMOKE/traced.txt"
grep -q 'trace:           written to' "$SMOKE/traced.txt"
grep -q 'router.solve' "$SMOKE/routed-trace.jsonl"
grep -q 'router.attempt' "$SMOKE/routed-trace.jsonl"
grep -q 'server.solve' "$SMOKE/routed-trace.jsonl"
"$FOLEARN" trace --file "$SMOKE/routed-trace.jsonl" > "$SMOKE/rendered.txt"
grep -q 'router.solve' "$SMOKE/rendered.txt"
grep -q 'server.solve' "$SMOKE/rendered.txt"
# The live view, single-frame mode: fan-in stats from both live backends.
"$FOLEARN" top --addr "$RADDR" --once > "$SMOKE/top.txt"
grep -q 'folearn top — router' "$SMOKE/top.txt"
grep -q 'cluster:' "$SMOKE/top.txt"
grep -q '3 backends, 3 live' "$SMOKE/top.txt"

# Kill one backend; a fresh structure must still learn through the
# surviving replicas (the router retries and fails over internally).
kill "$B2_PID"; wait "$B2_PID" 2>/dev/null || true
B2_PID=
printf 'colors Red\nvertices 7\nedge 0 1\nedge 1 2\nedge 2 3\nedge 3 4\nedge 4 5\nedge 5 6\ncolor 0 Red\ncolor 3 Red\ncolor 6 Red\n' > "$SMOKE/graph2.txt"
printf '+ 0\n- 1\n- 2\n+ 3\n- 4\n- 5\n+ 6\n' > "$SMOKE/sample2.txt"
"$FOLEARN" client --addr "$RADDR" --action solve --graph "$SMOKE/graph2.txt" \
    --examples "$SMOKE/sample2.txt" --ell 1 --q 1 --retries 4 > "$SMOKE/degraded.txt"
grep -q 'training error:  0.0000' "$SMOKE/degraded.txt"

"$FOLEARN" client --addr "$RADDR" --action shutdown
wait "$ROUTER_PID"
ROUTER_PID=
grep -q 'shut down cleanly' "$SMOKE/router.log"
for P in "$B1_PID" "$B3_PID"; do kill "$P" 2>/dev/null || true; wait "$P" 2>/dev/null || true; done
B1_PID=; B3_PID=

# --- fault-injection smoke test (hermetic: loopback only) -----------------
# Drives the Lemma 7 reduction and a loadgen mix through the deterministic
# chaos proxy under every fault mode; the binary exits nonzero unless all
# reports are bit-identical to in-process and no error went unrecovered.
target/release/exp_e19_faults "$SMOKE/BENCH_fault.json" > "$SMOKE/e19.txt"
grep -q 'verdict: PASS' "$SMOKE/e19.txt"
grep -q '"unrecovered_errors": 0' "$SMOKE/BENCH_fault.json"

# --- VM engine smoke test (hermetic: local files only) --------------------
# The compiled bytecode engine must agree with the tree walker on a real
# learn and a model check, straight through the CLI flag.
"$FOLEARN" learn --graph "$SMOKE/graph.txt" --examples "$SMOKE/sample.txt" \
    --ell 1 --q 1 --engine tree > "$SMOKE/learn_tree.txt"
"$FOLEARN" learn --graph "$SMOKE/graph.txt" --examples "$SMOKE/sample.txt" \
    --ell 1 --q 1 --engine vm > "$SMOKE/learn_vm.txt"
diff "$SMOKE/learn_tree.txt" "$SMOKE/learn_vm.txt"
TREE_MC=$("$FOLEARN" modelcheck --graph "$SMOKE/graph.txt" \
    --formula 'exists x0. Red(x0) & exists x1. E(x0, x1) & !Red(x1)' --engine tree)
VM_MC=$("$FOLEARN" modelcheck --graph "$SMOKE/graph.txt" \
    --formula 'exists x0. Red(x0) & exists x1. E(x0, x1) & !Red(x1)' --engine vm)
[ "$TREE_MC" = "$VM_MC" ]

# --- tracing smoke test (hermetic: local files only) ----------------------
# A traced learn writes a JSONL span tree; `folearn trace` reads it back
# and prints the per-name rollup with the sweep's work counters.
"$FOLEARN" learn --graph "$SMOKE/graph.txt" --examples "$SMOKE/sample.txt" \
    --ell 1 --q 1 --trace-out "$SMOKE/trace.jsonl" --trace-summary on > "$SMOKE/learn.txt"
grep -q 'erm.sweep' "$SMOKE/learn.txt"
[ -s "$SMOKE/trace.jsonl" ]
"$FOLEARN" trace --file "$SMOKE/trace.jsonl" > "$SMOKE/trace.txt"
grep -q 'root span(s)' "$SMOKE/trace.txt"
grep -q 'evaluated_params=' "$SMOKE/trace.txt"

echo "tier1: OK"
