#!/usr/bin/env bash
# Tier-1 gate: release build, the full test suite, and lint-clean clippy.
#
# The workspace vendors all third-party dependencies as path crates under
# crates/shims/ (no registry packages in Cargo.lock), so --offline always
# works and the gate is hermetic.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --offline --release --workspace
cargo test  --offline -q --workspace
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "tier1: OK"
